//! Instrumented end-to-end protocol runs over standard workloads.

use dtrack_core::boost::{median, Replicated};
use dtrack_core::count::{DeterministicCount, RandomizedCount};
use dtrack_core::frequency::{DeterministicFrequency, RandomizedFrequency};
use dtrack_core::rank::{DeterministicRank, RandomizedRank};
use dtrack_core::sampling::ContinuousSampling;
use dtrack_core::TrackingConfig;
use dtrack_sim::{Protocol, Runner};
use dtrack_sketch::exact::{ExactCounts, ExactRanks};
use dtrack_workload::items::{DistinctSeq, ItemGen, ZipfItems};
use dtrack_workload::{Arrival, RoundRobin, SiteAssign, UniformSites, Workload};

/// Communication + space outcome of one run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommSpace {
    /// Total messages, both directions.
    pub msgs: u64,
    /// Total words, both directions.
    pub words: u64,
    /// Broadcast events.
    pub broadcasts: u64,
    /// Peak resident words over all sites.
    pub max_space: u64,
}

impl CommSpace {
    fn from_runner<P: Protocol>(r: &Runner<P>) -> Self {
        Self {
            msgs: r.stats().total_msgs(),
            words: r.stats().total_words(),
            broadcasts: r.stats().broadcast_events,
            max_space: r.space().max_peak(),
        }
    }
}

/// Count-tracking algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountAlgo {
    /// §2.1 randomized protocol (Theorem 2.1).
    Randomized,
    /// Trivial (1+ε)-threshold baseline.
    Deterministic,
    /// Continuous sampling baseline \[9\].
    Sampling,
}

/// Frequency-tracking algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreqAlgo {
    /// §3.1 randomized protocol (Theorem 3.1).
    Randomized,
    /// \[29\]-style deterministic baseline.
    Deterministic,
    /// Continuous sampling baseline \[9\].
    Sampling,
}

/// Rank-tracking algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankAlgo {
    /// §4 randomized protocol (Theorem 4.1).
    Randomized,
    /// \[6\]-style deterministic GK baseline.
    Deterministic,
    /// Continuous sampling baseline \[9\].
    Sampling,
}

/// Run count-tracking over a round-robin stream of `n` elements.
/// Returns cost and the final relative error `|n̂ − n|/n`.
pub fn count_run(
    algo: CountAlgo,
    k: usize,
    eps: f64,
    n: u64,
    seed: u64,
) -> (CommSpace, f64) {
    let cfg = TrackingConfig::new(k, eps);
    let feed = |r: &mut dyn FnMut(usize, u64)| {
        for t in 0..n {
            r((t % k as u64) as usize, t);
        }
    };
    match algo {
        CountAlgo::Randomized => {
            let mut r = Runner::new(&RandomizedCount::new(cfg), seed);
            feed(&mut |s, v| r.feed(s, &v));
            let err = (r.coord().estimate() - n as f64).abs() / n as f64;
            (CommSpace::from_runner(&r), err)
        }
        CountAlgo::Deterministic => {
            let mut r = Runner::new(&DeterministicCount::new(cfg), seed);
            feed(&mut |s, v| r.feed(s, &v));
            let err = (r.coord().estimate() - n as f64).abs() / n as f64;
            (CommSpace::from_runner(&r), err)
        }
        CountAlgo::Sampling => {
            let mut r = Runner::new(&ContinuousSampling::new(cfg), seed);
            feed(&mut |s, v| r.feed(s, &v));
            let err = (r.coord().estimate_count() - n as f64).abs() / n as f64;
            (CommSpace::from_runner(&r), err)
        }
    }
}

/// Relative count error at geometric checkpoints (for all-times plots).
pub fn count_error_trace(
    algo: CountAlgo,
    k: usize,
    eps: f64,
    n: u64,
    seed: u64,
    checkpoints: &[u64],
) -> Vec<f64> {
    let cfg = TrackingConfig::new(k, eps);
    let mut out = Vec::with_capacity(checkpoints.len());
    macro_rules! trace {
        ($proto:expr, $est:expr) => {{
            let mut r = Runner::new(&$proto, seed);
            let mut ci = 0;
            for t in 0..n {
                r.feed((t % k as u64) as usize, &t);
                while ci < checkpoints.len() && t + 1 == checkpoints[ci] {
                    let est: f64 = $est(&r);
                    out.push((est - (t + 1) as f64).abs() / (t + 1) as f64);
                    ci += 1;
                }
            }
        }};
    }
    match algo {
        CountAlgo::Randomized => {
            trace!(RandomizedCount::new(cfg), |r: &Runner<RandomizedCount>| r
                .coord()
                .estimate())
        }
        CountAlgo::Deterministic => {
            trace!(
                DeterministicCount::new(cfg),
                |r: &Runner<DeterministicCount>| r.coord().estimate()
            )
        }
        CountAlgo::Sampling => {
            trace!(
                ContinuousSampling::new(cfg),
                |r: &Runner<ContinuousSampling>| r.coord().estimate_count()
            )
        }
    }
    out
}

/// Median-boosted randomized count tracking: returns the *maximum*
/// relative error over all checkpoints (the all-times guarantee).
pub fn count_boosted_max_error(
    k: usize,
    eps: f64,
    n: u64,
    copies: usize,
    seed: u64,
    checkpoints: &[u64],
) -> f64 {
    let cfg = TrackingConfig::new(k, eps);
    let proto = Replicated::new(RandomizedCount::new(cfg), copies);
    let mut r = Runner::new(&proto, seed);
    let mut worst = 0.0f64;
    let mut ci = 0;
    for t in 0..n {
        r.feed((t % k as u64) as usize, &t);
        while ci < checkpoints.len() && t + 1 == checkpoints[ci] {
            let est = r.coord().median_by(|c| c.estimate());
            worst = worst.max((est - (t + 1) as f64).abs() / (t + 1) as f64);
            ci += 1;
        }
    }
    worst
}

/// The standard frequency workload: zipf(1.1) items over a 10⁴ domain,
/// uniformly random site per element.
fn freq_workload(k: usize, n: u64, seed: u64) -> Vec<Arrival> {
    Workload::new(ZipfItems::new(10_000, 1.1), UniformSites::new(k), n, seed)
        .collect_vec()
}

/// Run frequency-tracking; returns cost and the maximum `|f̂ − f|/n` over
/// the 20 most frequent items plus 5 absent probes.
pub fn frequency_run(
    algo: FreqAlgo,
    k: usize,
    eps: f64,
    n: u64,
    seed: u64,
) -> (CommSpace, f64) {
    let cfg = TrackingConfig::new(k, eps);
    let arrivals = freq_workload(k, n, seed ^ 0xF00D);
    let mut exact = ExactCounts::new();
    let probes: Vec<u64> = (0..20u64).chain(2_000_000..2_000_005).collect();
    macro_rules! run {
        ($proto:expr, $est:expr) => {{
            let mut r = Runner::new(&$proto, seed);
            for a in &arrivals {
                r.feed(a.site, &a.item);
                exact.observe(a.item);
            }
            let worst = probes
                .iter()
                .map(|&j| {
                    let est: f64 = $est(&r, j);
                    (est - exact.frequency(j) as f64).abs() / n as f64
                })
                .fold(0.0f64, f64::max);
            (CommSpace::from_runner(&r), worst)
        }};
    }
    match algo {
        FreqAlgo::Randomized => {
            run!(RandomizedFrequency::new(cfg), |r: &Runner<
                RandomizedFrequency,
            >,
                                                 j| r
                .coord()
                .estimate_frequency(j))
        }
        FreqAlgo::Deterministic => {
            run!(DeterministicFrequency::new(cfg), |r: &Runner<
                DeterministicFrequency,
            >,
                                                    j| {
                r.coord().estimate_frequency(j)
            })
        }
        FreqAlgo::Sampling => {
            run!(ContinuousSampling::new(cfg), |r: &Runner<
                ContinuousSampling,
            >,
                                                j| {
                r.coord().estimate_frequency(j)
            })
        }
    }
}

/// Per-query error on a single probe (the hottest zipf item): this is
/// the quantity the paper's per-instant 0.9 guarantee (Theorem 3.1)
/// speaks about — unlike [`frequency_run`], which takes the max over 25
/// probes (a union, so necessarily worse than the per-query bound).
pub fn frequency_single_probe_error(
    algo: FreqAlgo,
    k: usize,
    eps: f64,
    n: u64,
    seed: u64,
) -> f64 {
    let cfg = TrackingConfig::new(k, eps);
    let arrivals = freq_workload(k, n, seed ^ 0xF00D);
    let mut exact = ExactCounts::new();
    macro_rules! run {
        ($proto:expr, $est:expr) => {{
            let mut r = Runner::new(&$proto, seed);
            for a in &arrivals {
                r.feed(a.site, &a.item);
                exact.observe(a.item);
            }
            let est: f64 = $est(&r, 0u64);
            (est - exact.frequency(0) as f64).abs() / n as f64
        }};
    }
    match algo {
        FreqAlgo::Randomized => {
            run!(RandomizedFrequency::new(cfg), |r: &Runner<
                RandomizedFrequency,
            >,
                                                 j| r
                .coord()
                .estimate_frequency(j))
        }
        FreqAlgo::Deterministic => {
            run!(DeterministicFrequency::new(cfg), |r: &Runner<
                DeterministicFrequency,
            >,
                                                    j| {
                r.coord().estimate_frequency(j)
            })
        }
        FreqAlgo::Sampling => {
            run!(ContinuousSampling::new(cfg), |r: &Runner<
                ContinuousSampling,
            >,
                                                j| {
                r.coord().estimate_frequency(j)
            })
        }
    }
}

/// Run rank-tracking over a duplicate-free round-robin stream; returns
/// cost and the maximum `|rank̂ − rank|/n` over the deciles.
pub fn rank_run(
    algo: RankAlgo,
    k: usize,
    eps: f64,
    n: u64,
    seed: u64,
) -> (CommSpace, f64) {
    let cfg = TrackingConfig::new(k, eps);
    let mut items = DistinctSeq::new(seed ^ 0xBEEF);
    let mut assign = RoundRobin::new(k);
    let mut wl_rng = dtrack_sim::rng::rng_from_seed(seed);
    let mut exact = ExactRanks::new();
    let arrivals: Vec<(usize, u64)> = (0..n)
        .map(|_| {
            (
                assign.next_site(&mut wl_rng),
                items.next_item(&mut wl_rng),
            )
        })
        .collect();
    macro_rules! run {
        ($proto:expr, $est:expr) => {{
            let mut r = Runner::new(&$proto, seed);
            for (s, v) in &arrivals {
                r.feed(*s, v);
                exact.insert(*v);
            }
            let worst = (1..10)
                .map(|d| {
                    let x = exact.quantile(d as f64 / 10.0).unwrap();
                    let truth = exact.rank(x) as f64;
                    let est: f64 = $est(&r, x);
                    (est - truth).abs() / n as f64
                })
                .fold(0.0f64, f64::max);
            (CommSpace::from_runner(&r), worst)
        }};
    }
    match algo {
        RankAlgo::Randomized => {
            run!(RandomizedRank::new(cfg), |r: &Runner<RandomizedRank>, x| r
                .coord()
                .estimate_rank(x))
        }
        RankAlgo::Deterministic => {
            run!(
                DeterministicRank::new(cfg),
                |r: &Runner<DeterministicRank>, x| r.coord().estimate_rank(x)
            )
        }
        RankAlgo::Sampling => {
            run!(
                ContinuousSampling::new(cfg),
                |r: &Runner<ContinuousSampling>, x| r.coord().estimate_rank(x)
            )
        }
    }
}

/// Median over seeds of a per-seed scalar measurement.
pub fn median_over_seeds<F: Fn(u64) -> f64>(seeds: std::ops::Range<u64>, f: F) -> f64 {
    median(seeds.map(f).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_runs_all_algos() {
        for algo in [
            CountAlgo::Randomized,
            CountAlgo::Deterministic,
            CountAlgo::Sampling,
        ] {
            let (cs, err) = count_run(algo, 4, 0.2, 20_000, 1);
            assert!(cs.msgs > 0);
            assert!(cs.words >= cs.msgs);
            assert!(err < 0.5, "{algo:?} err {err}");
        }
    }

    #[test]
    fn frequency_runs_all_algos() {
        for algo in [
            FreqAlgo::Randomized,
            FreqAlgo::Deterministic,
            FreqAlgo::Sampling,
        ] {
            let (cs, err) = frequency_run(algo, 4, 0.2, 20_000, 2);
            assert!(cs.msgs > 0);
            assert!(err < 0.5, "{algo:?} err {err}");
        }
    }

    #[test]
    fn rank_runs_all_algos() {
        for algo in [
            RankAlgo::Randomized,
            RankAlgo::Deterministic,
            RankAlgo::Sampling,
        ] {
            let (cs, err) = rank_run(algo, 4, 0.2, 20_000, 3);
            assert!(cs.msgs > 0);
            assert!(err < 0.5, "{algo:?} err {err}");
        }
    }

    #[test]
    fn boosted_error_is_small_at_all_checkpoints() {
        let checkpoints: Vec<u64> = (1..20).map(|i| i * 1000).collect();
        let worst = count_boosted_max_error(8, 0.15, 20_000, 7, 11, &checkpoints);
        assert!(worst <= 0.15, "worst {worst}");
    }

    #[test]
    fn trace_has_checkpoint_arity() {
        let cps = vec![100, 1000, 5000];
        let t = count_error_trace(CountAlgo::Randomized, 4, 0.2, 5000, 5, &cps);
        assert_eq!(t.len(), 3);
    }
}
