//! Least-squares scaling-exponent estimation.

/// Slope of the least-squares line of `ln y` against `ln x` — the
/// empirical scaling exponent `α` in `y ∝ x^α`.
pub fn loglog_slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2);
    let lx: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|&y| y.ln()).collect();
    slope(&lx, &ly)
}

/// Ordinary least-squares slope of `y` on `x`.
pub fn slope(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(&x, &y)| (x - mx) * (y - my)).sum();
    let var: f64 = xs.iter().map(|&x| (x - mx) * (x - mx)).sum();
    cov / var
}

/// Pearson correlation of `ln y` vs `ln x` — how clean the power law is.
pub fn loglog_r2(xs: &[f64], ys: &[f64]) -> f64 {
    let lx: Vec<f64> = xs.iter().map(|&x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|&y| y.ln()).collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let cov: f64 = lx.iter().zip(&ly).map(|(&x, &y)| (x - mx) * (y - my)).sum();
    let vx: f64 = lx.iter().map(|&x| (x - mx) * (x - mx)).sum();
    let vy: f64 = ly.iter().map(|&y| (y - my) * (y - my)).sum();
    let r = cov / (vx * vy).sqrt();
    r * r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_power_laws() {
        let xs: Vec<f64> = vec![4.0, 16.0, 64.0, 256.0];
        let sqrt: Vec<f64> = xs.iter().map(|x| 3.0 * x.sqrt()).collect();
        let lin: Vec<f64> = xs.iter().map(|x| 0.5 * x).collect();
        assert!((loglog_slope(&xs, &sqrt) - 0.5).abs() < 1e-9);
        assert!((loglog_slope(&xs, &lin) - 1.0).abs() < 1e-9);
        assert!(loglog_r2(&xs, &sqrt) > 0.999);
    }

    #[test]
    fn slope_of_noisy_line() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        assert!((slope(&xs, &ys) - 2.0).abs() < 1e-9);
    }
}
