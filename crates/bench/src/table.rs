//! Minimal aligned-table printing for experiment binaries.

/// A printable table with a header row.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Compact human formatting of a (possibly large) number.
pub fn fmt_num(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1e7 {
        format!(
            "{:.2}e{}",
            x / 10f64.powi(x.abs().log10() as i32),
            x.abs().log10() as i32
        )
    } else if x.abs() >= 100.0 {
        format!("{:.0}", x)
    } else if x.abs() >= 1.0 {
        format!("{:.2}", x)
    } else {
        format!("{:.4}", x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["algo", "msgs"]);
        t.row(["rand", "123"]);
        t.row(["deterministic", "45"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("algo"));
        assert!(lines[3].ends_with("45"));
        // All rows equal width.
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_bad_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn number_formats() {
        assert_eq!(fmt_num(0.0), "0");
        assert_eq!(fmt_num(0.1234), "0.1234");
        assert_eq!(fmt_num(6.54321), "6.54");
        assert_eq!(fmt_num(1234.0), "1234");
        assert!(fmt_num(123_456_789.0).contains('e'));
    }
}
