//! Perf-regression harness: a committed JSON baseline of words + wall
//! time per protocol/workload cell, and a `--check` comparator.
//!
//! The criterion stand-in reports honest medians but has no memory, so
//! nothing used to catch a regression landing between two PRs. This
//! module gives the `perf_baseline` binary its machinery:
//!
//! * [`measure_cells`] runs a small fixed matrix (the seven Table-1
//!   protocol cells on their standard workloads plus one sliding-window
//!   cell, lock-step executor) and records
//!   the **median words** (deterministic given the seed set — an exact
//!   regression signal for communication) and **median wall time** per
//!   cell (noisy — compared with a generous factor, and the CI step is
//!   non-blocking).
//! * [`to_json`] / [`parse_json`] serialize the baseline without any
//!   external dependency: the format is a flat, versioned JSON document
//!   written and read only by this module.
//! * [`compare`] diffs a current run against the stored baseline.
//!
//! Workflow: `cargo run --release -p dtrack-bench --bin perf_baseline`
//! rewrites `BENCH_baseline.json`; `… --bin perf_baseline -- --check`
//! exits non-zero if any cell regressed.

use std::time::Instant;

use dtrack_sim::ExecConfig;

use crate::measure::{count_run, frequency_run, rank_run, CountAlgo, FreqAlgo, RankAlgo};

/// Baseline parameters of one measurement matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Stream length per cell.
    pub n: u64,
    /// Number of sites.
    pub k: usize,
    /// Error target.
    pub eps: f64,
    /// Seeds 0..seeds are run; medians are stored.
    pub seeds: u64,
}

impl Params {
    /// The default matrix: small enough for CI, large enough that the
    /// protocols leave their warm-up rounds.
    pub fn default_ci() -> Self {
        Self {
            n: 60_000,
            k: 16,
            eps: 0.05,
            seeds: 3,
        }
    }
}

/// One measured cell: a protocol on its standard workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Stable identifier, e.g. `count/randomized`.
    pub id: String,
    /// Median total words over the seed set (deterministic per seed).
    pub words: u64,
    /// Median wall time in milliseconds (machine-dependent).
    pub millis: f64,
}

/// Median of a small vector (by partial order; NaN-free inputs).
fn med_u64(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

fn med_f64(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Run the measurement matrix and return one [`Cell`] per protocol.
pub fn measure_cells(p: Params) -> Vec<Cell> {
    let exec = ExecConfig::lockstep();
    let timed = |f: &dyn Fn(u64) -> u64| -> (u64, f64) {
        let mut words = Vec::new();
        let mut millis = Vec::new();
        for seed in 0..p.seeds {
            let t0 = Instant::now();
            words.push(f(seed));
            millis.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        (med_u64(words), med_f64(millis))
    };

    type CellFn<'a> = (&'a str, Box<dyn Fn(u64) -> u64>);
    let (n, k, eps) = (p.n, p.k, p.eps);
    let cells: Vec<CellFn> = vec![
        (
            "count/deterministic",
            Box::new(move |s| count_run(exec, CountAlgo::Deterministic, k, eps, n, s).0.words),
        ),
        (
            "count/randomized",
            Box::new(move |s| count_run(exec, CountAlgo::Randomized, k, eps, n, s).0.words),
        ),
        (
            "count/sampling",
            Box::new(move |s| count_run(exec, CountAlgo::Sampling, k, eps, n, s).0.words),
        ),
        (
            "frequency/deterministic",
            Box::new(move |s| {
                frequency_run(exec, FreqAlgo::Deterministic, k, eps, n, s).0.words
            }),
        ),
        (
            "frequency/randomized",
            Box::new(move |s| {
                frequency_run(exec, FreqAlgo::Randomized, k, eps, n, s).0.words
            }),
        ),
        (
            "rank/deterministic",
            Box::new(move |s| rank_run(exec, RankAlgo::Deterministic, k, eps, n, s).0.words),
        ),
        (
            "rank/randomized",
            Box::new(move |s| rank_run(exec, RankAlgo::Randomized, k, eps, n, s).0.words),
        ),
        // Sliding-window scenario: the randomized count protocol under
        // the Windowed adapter (window = n/4). Words include the epoch
        // restarts and heartbeat/seal traffic, so this cell guards the
        // window subsystem's communication behavior.
        (
            "count/windowed",
            Box::new(move |s| {
                count_run(exec.windowed(n / 4), CountAlgo::Randomized, k, eps, n, s)
                    .0
                    .words
            }),
        ),
    ];

    cells
        .into_iter()
        .map(|(id, f)| {
            let (words, millis) = timed(&*f);
            Cell {
                id: id.to_string(),
                words,
                millis,
            }
        })
        .collect()
}

/// Serialize a baseline document.
pub fn to_json(p: Params, cells: &[Cell]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"version\": 1,\n");
    s.push_str(&format!(
        "  \"params\": {{\"n\": {}, \"k\": {}, \"eps\": {}, \"seeds\": {}}},\n",
        p.n, p.k, p.eps, p.seeds
    ));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"words\": {}, \"millis\": {:.3}}}{}\n",
            c.id,
            c.words,
            c.millis,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extract the JSON value following `"key":` in `obj` (a flat object
/// slice produced by [`to_json`]). Returns the raw token up to the next
/// `,`, `}` or `]`.
fn field<'a>(obj: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\":");
    let start = obj
        .find(&pat)
        .ok_or_else(|| format!("missing field {key:?} in {obj:?}"))?
        + pat.len();
    let rest = obj[start..].trim_start();
    let end = rest
        .find([',', '}', ']'])
        .ok_or_else(|| format!("unterminated field {key:?}"))?;
    Ok(rest[..end].trim())
}

fn unquote(s: &str) -> Result<&str, String> {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected string, got {s:?}"))
}

/// Parse a document produced by [`to_json`]. This is deliberately *not*
/// a general JSON parser — it accepts exactly the flat schema this
/// module writes (and errors loudly on anything else).
pub fn parse_json(s: &str) -> Result<(Params, Vec<Cell>), String> {
    let version: u32 = field(s, "version")?
        .parse()
        .map_err(|e| format!("bad version: {e}"))?;
    if version != 1 {
        return Err(format!("unsupported baseline version {version}"));
    }
    let pstart = s
        .find("\"params\"")
        .ok_or_else(|| "missing params".to_string())?;
    let pobj = &s[pstart..s[pstart..].find('}').map(|i| pstart + i + 1).unwrap_or(s.len())];
    let params = Params {
        n: field(pobj, "n")?.parse().map_err(|e| format!("bad n: {e}"))?,
        k: field(pobj, "k")?.parse().map_err(|e| format!("bad k: {e}"))?,
        eps: field(pobj, "eps")?
            .parse()
            .map_err(|e| format!("bad eps: {e}"))?,
        seeds: field(pobj, "seeds")?
            .parse()
            .map_err(|e| format!("bad seeds: {e}"))?,
    };
    let cstart = s
        .find("\"cells\"")
        .ok_or_else(|| "missing cells".to_string())?;
    let carr = &s[cstart..];
    let mut cells = Vec::new();
    let mut rest = carr;
    while let Some(open) = rest.find('{') {
        let close = rest[open..]
            .find('}')
            .ok_or_else(|| "unterminated cell object".to_string())?
            + open;
        let obj = &rest[open..=close];
        cells.push(Cell {
            id: unquote(field(obj, "id")?)?.to_string(),
            words: field(obj, "words")?
                .parse()
                .map_err(|e| format!("bad words: {e}"))?,
            millis: field(obj, "millis")?
                .parse()
                .map_err(|e| format!("bad millis: {e}"))?,
        });
        rest = &rest[close + 1..];
    }
    if cells.is_empty() {
        return Err("baseline contains no cells".to_string());
    }
    Ok((params, cells))
}

/// Compare a current run against the baseline.
///
/// * `words` beyond ±`word_tol` (relative) is reported — words are
///   deterministic given the seed set, so any drift is a real behavior
///   change (more communication = regression, less = improvement worth
///   re-baselining).
/// * `millis` beyond `time_factor`× the baseline is reported — wall time
///   is machine-dependent, so only large factors are meaningful.
///
/// Returns human-readable findings; empty means within tolerance.
pub fn compare(
    baseline: &[Cell],
    current: &[Cell],
    word_tol: f64,
    time_factor: f64,
) -> Vec<String> {
    let mut findings = Vec::new();
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.id == b.id) else {
            findings.push(format!("{}: cell missing from current run", b.id));
            continue;
        };
        let drift = (c.words as f64 - b.words as f64) / (b.words as f64).max(1.0);
        if drift.abs() > word_tol {
            findings.push(format!(
                "{}: words {} -> {} ({:+.1}%, tolerance ±{:.0}%)",
                b.id,
                b.words,
                c.words,
                drift * 1e2,
                word_tol * 1e2
            ));
        }
        if c.millis > b.millis * time_factor {
            findings.push(format!(
                "{}: wall time {:.2}ms -> {:.2}ms (> {:.1}x baseline)",
                b.id, b.millis, c.millis, time_factor
            ));
        }
    }
    for c in current {
        if !baseline.iter().any(|b| b.id == c.id) {
            findings.push(format!(
                "{}: new cell not in baseline (re-run without --check)",
                c.id
            ));
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cells() -> Vec<Cell> {
        vec![
            Cell {
                id: "count/randomized".into(),
                words: 1234,
                millis: 5.125,
            },
            Cell {
                id: "rank/deterministic".into(),
                words: 99,
                millis: 0.75,
            },
        ]
    }

    #[test]
    fn json_round_trips() {
        let p = Params::default_ci();
        let cells = sample_cells();
        let (p2, cells2) = parse_json(&to_json(p, &cells)).unwrap();
        assert_eq!(p, p2);
        assert_eq!(cells, cells2);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{\"version\": 2}").is_err());
        assert!(parse_json("{\"version\": 1, \"cells\": []}").is_err());
    }

    #[test]
    fn compare_flags_word_drift_and_slowdowns() {
        let base = sample_cells();
        let mut cur = sample_cells();
        assert!(compare(&base, &cur, 0.02, 3.0).is_empty());
        cur[0].words = 2000; // +62%
        cur[1].millis = 10.0; // 13x
        let findings = compare(&base, &cur, 0.02, 3.0);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].contains("count/randomized"));
        assert!(findings[1].contains("wall time"));
    }

    #[test]
    fn compare_flags_missing_and_new_cells() {
        let base = sample_cells();
        let cur = vec![
            base[0].clone(),
            Cell {
                id: "novel/cell".into(),
                words: 1,
                millis: 1.0,
            },
        ];
        let findings = compare(&base, &cur, 0.02, 3.0);
        assert!(findings.iter().any(|f| f.contains("missing")));
        assert!(findings.iter().any(|f| f.contains("not in baseline")));
    }

    #[test]
    fn measured_words_are_deterministic() {
        let p = Params {
            n: 4_000,
            k: 4,
            eps: 0.2,
            seeds: 1,
        };
        let a = measure_cells(p);
        let b = measure_cells(p);
        assert_eq!(a.len(), 8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.words, y.words, "{}", x.id);
        }
    }
}
