//! Perf-regression harness: a committed JSON baseline of words + wall
//! time per protocol/workload cell, and a `--check` comparator.
//!
//! The criterion stand-in reports honest medians but has no memory, so
//! nothing used to catch a regression landing between two PRs. This
//! module gives the `perf_baseline` binary its machinery:
//!
//! * [`measure_cells`] runs a small fixed matrix — the seven Table-1
//!   protocol cells on their standard workloads plus two sliding-window
//!   cells (count and frequency, lock-step executor), plus one windowed
//!   cell on the *channel* runtime — and records the **median words**
//!   and **median wall time** per cell.
//! * [`measure_throughput_cells`] runs the separate ingest-throughput
//!   panel: the channel runtime fed [`THROUGHPUT_ELEMS`] elements
//!   through the coalesced `feed_batch` path and the per-element `feed`
//!   path, recording median **elements/second** alongside the words
//!   distribution. Rates are machine-dependent like wall time, so they
//!   are bootstrapped per machine and compared advisorily.
//! * [`measure_query_cells`] runs the live-query panel: reader threads
//!   answering count queries from lock-free snapshot cells while the
//!   channel runtime ingests, recording aggregate **queries/second**
//!   (advisory, machine-dependent like the throughput rates).
//! * [`measure_topology_cells`] runs the hierarchical-topology panel:
//!   the randomized count protocol on the flat star vs a binary
//!   depth-4 aggregation tree, recording root-load words **per level**
//!   (`topology/*` cells). Advisory by design — the panel watches the
//!   per-level load profile, not single words.
//! * Each [`Cell`] is `exact` or not. Lock-step words are deterministic
//!   given the seed set, so the comparator treats any drift as a **hard**
//!   regression. The channel cell's words depend on thread interleaving,
//!   so a single median would be a pretense of precision: the cell
//!   records a words **distribution** (min/median/max over
//!   [`INEXACT_SEEDS`] seeds) and the comparator checks the current
//!   median against that recorded range. Its drift (like all wall-time
//!   drift) is **advisory** — printed, but never failing the build.
//! * [`to_json`] / [`parse_json`] serialize the baseline without any
//!   external dependency: the format is a flat, versioned JSON document
//!   written and read only by this module.
//! * [`compare`] diffs a current run against the stored baseline into
//!   hard and advisory findings.
//!
//! Workflow: `cargo run --release -p dtrack-bench --bin perf_baseline`
//! rewrites `BENCH_baseline.json`; `… -- --bootstrap` regenerates only
//! the machine-dependent wall-times in place (CI does this on the runner
//! so its timing comparisons are same-machine); `… -- --check` exits
//! non-zero on hard findings only.

use std::time::Instant;

use dtrack_sim::ExecConfig;

use crate::measure::{
    count_run, frequency_run, rank_run, tree_count_run, CountAlgo, FreqAlgo, RankAlgo,
};
use dtrack_sim::TreeSpec;

/// Baseline parameters of one measurement matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Stream length per cell.
    pub n: u64,
    /// Number of sites.
    pub k: usize,
    /// Error target.
    pub eps: f64,
    /// Seeds 0..seeds are run; medians are stored.
    pub seeds: u64,
}

impl Params {
    /// The default matrix: small enough for CI, large enough that the
    /// protocols leave their warm-up rounds.
    pub fn default_ci() -> Self {
        Self {
            n: 60_000,
            k: 16,
            eps: 0.05,
            seeds: 3,
        }
    }
}

/// Seeds measured for inexact (thread-timed) cells: enough to record a
/// meaningful min/median/max words distribution, independent of the
/// (smaller) exact-cell seed count.
pub const INEXACT_SEEDS: u64 = 5;

/// One measured cell: a protocol on its standard workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Stable identifier, e.g. `count/randomized`.
    pub id: String,
    /// Median total words over the seed set.
    pub words: u64,
    /// Median wall time in milliseconds (machine-dependent).
    pub millis: f64,
    /// Whether `words` is deterministic given the seed set (true for
    /// every lock-step cell). Exact cells fail the check on any word
    /// drift; inexact cells (the channel-runtime cell) record a words
    /// distribution and are compared against it advisorily.
    pub exact: bool,
    /// Minimum words over the seed set. Only meaningful (persisted,
    /// compared) for inexact cells, where it is the low edge of the
    /// recorded distribution over [`INEXACT_SEEDS`] seeds. Exact cells
    /// also measure a per-seed spread here in memory, but their gate is
    /// the median alone: [`to_json`] omits their range and
    /// [`parse_json`] restores it degenerately at the median.
    pub words_min: u64,
    /// Maximum words over the seed set (see `words_min`).
    pub words_max: u64,
    /// Median ingest throughput in elements per second, recorded only
    /// for the `throughput/*` cells produced by
    /// [`measure_throughput_cells`]. Machine-dependent like `millis`, so
    /// the comparator treats drift here as **advisory** and
    /// [`bootstrap`] refreshes it alongside wall-times. `None` for the
    /// protocol/words cells, whose JSON omits the field entirely.
    pub elems_per_sec: Option<f64>,
}

/// Median of a small vector (by partial order; NaN-free inputs).
fn med_u64(mut v: Vec<u64>) -> u64 {
    v.sort_unstable();
    v[v.len() / 2]
}

fn med_f64(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[v.len() / 2]
}

/// Run the measurement matrix and return one [`Cell`] per protocol.
/// Exact cells run `p.seeds` seeds and store the median words; inexact
/// cells run `max(p.seeds, INEXACT_SEEDS)` seeds and additionally store
/// the min/max of the words distribution.
pub fn measure_cells(p: Params) -> Vec<Cell> {
    let exec = ExecConfig::lockstep();
    let timed = |f: &dyn Fn(u64) -> u64, seeds: u64| -> (u64, u64, u64, f64) {
        let mut words = Vec::new();
        let mut millis = Vec::new();
        for seed in 0..seeds {
            let t0 = Instant::now();
            words.push(f(seed));
            millis.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        let (lo, hi) = (
            *words.iter().min().expect("≥1 seed"),
            *words.iter().max().expect("≥1 seed"),
        );
        (lo, med_u64(words), hi, med_f64(millis))
    };

    type CellFn<'a> = (&'a str, bool, Box<dyn Fn(u64) -> u64>);
    let (n, k, eps) = (p.n, p.k, p.eps);
    const EXACT: bool = true;
    let cells: Vec<CellFn> = vec![
        (
            "count/deterministic",
            EXACT,
            Box::new(move |s| {
                count_run(exec, CountAlgo::Deterministic, k, eps, n, s)
                    .0
                    .words
            }),
        ),
        (
            "count/randomized",
            EXACT,
            Box::new(move |s| count_run(exec, CountAlgo::Randomized, k, eps, n, s).0.words),
        ),
        (
            "count/sampling",
            EXACT,
            Box::new(move |s| count_run(exec, CountAlgo::Sampling, k, eps, n, s).0.words),
        ),
        (
            "frequency/deterministic",
            EXACT,
            Box::new(move |s| {
                frequency_run(exec, FreqAlgo::Deterministic, k, eps, n, s)
                    .0
                    .words
            }),
        ),
        (
            "frequency/randomized",
            EXACT,
            Box::new(move |s| {
                frequency_run(exec, FreqAlgo::Randomized, k, eps, n, s)
                    .0
                    .words
            }),
        ),
        (
            "rank/deterministic",
            EXACT,
            Box::new(move |s| {
                rank_run(exec, RankAlgo::Deterministic, k, eps, n, s)
                    .0
                    .words
            }),
        ),
        (
            "rank/randomized",
            EXACT,
            Box::new(move |s| rank_run(exec, RankAlgo::Randomized, k, eps, n, s).0.words),
        ),
        // Sliding-window scenario: the randomized count protocol under
        // the Windowed adapter (window = n/4). Words include the epoch
        // restarts and heartbeat/seal traffic, so this cell guards the
        // window subsystem's communication behavior.
        (
            "count/windowed",
            EXACT,
            Box::new(move |s| {
                count_run(exec.windowed(n / 4), CountAlgo::Randomized, k, eps, n, s)
                    .0
                    .words
            }),
        ),
        // The corrected windowed frequency path (epoch digests carrying
        // the −d/p correction terms). The corrections are
        // coordinator-local — no protocol messages change — so words
        // here are exactly the pre-correction words; the cell pins that,
        // and regression-gates windowed frequency like every other
        // scenario cell.
        (
            "frequency/windowed",
            EXACT,
            Box::new(move |s| {
                frequency_run(exec.windowed(n / 4), FreqAlgo::Randomized, k, eps, n, s)
                    .0
                    .words
            }),
        ),
        // The same windowed scenario on the thread-per-site channel
        // runtime — the measurement-grade concurrent path. Thread
        // interleaving makes its word count non-deterministic, so the
        // cell is advisory: it guards against order-of-magnitude
        // communication blowups (e.g. a seal storm), not single words.
        (
            "window/channel",
            !EXACT,
            Box::new(move |s| {
                count_run(
                    ExecConfig::channel().windowed(n / 4),
                    CountAlgo::Randomized,
                    k,
                    eps,
                    n,
                    s,
                )
                .0
                .words
            }),
        ),
    ];

    cells
        .into_iter()
        .map(|(id, exact, f)| {
            let seeds = if exact {
                p.seeds
            } else {
                p.seeds.max(INEXACT_SEEDS)
            };
            let (words_min, words, words_max, millis) = timed(&*f, seeds);
            Cell {
                id: id.to_string(),
                words,
                millis,
                exact,
                words_min,
                words_max,
                elems_per_sec: None,
            }
        })
        .collect()
}

/// Fanout of the topology panel's tree: binary, so the default CI
/// `k = 16` yields a depth-4 tree (8/4/2 aggregators) with **three**
/// internal boundaries — enough levels that the per-level load profile
/// is a real curve, not a single point.
pub const TOPOLOGY_FANOUT: usize = 2;

/// Depth of the topology panel's tree (see [`TOPOLOGY_FANOUT`]).
pub const TOPOLOGY_DEPTH: usize = 4;

/// Measure the hierarchical-topology panel: the randomized count
/// protocol on the flat star vs a binary depth-[`TOPOLOGY_DEPTH`] tree,
/// recording the **root-load words per level** — `topology/flat_root`
/// (the flat star's root sees every word), `topology/leaf` (the tree's
/// leaf ↔ level-1 boundary, accounted by the executor), and
/// `topology/levelL` for each internal boundary (the highest level is
/// the tree's root load).
///
/// All cells are **advisory** (`exact: false`): the panel exists to
/// watch the load *profile* — a restream blow-up at some level — not to
/// hard-pin single words, and keeping it advisory means tuning the
/// ε-split or the replay cursors doesn't demand a lockstep
/// re-baseline. Like every advisory cell, `--bootstrap` refreshes the
/// wall-times and `--check` compares words against the recorded range.
pub fn measure_topology_cells(p: Params) -> Vec<Cell> {
    let exec = ExecConfig::lockstep();
    let spec = TreeSpec::new(TOPOLOGY_FANOUT).with_depth(TOPOLOGY_DEPTH);
    let seeds = p.seeds.max(INEXACT_SEEDS);
    // One timed flat run + one timed tree run per seed; every cell of
    // the panel is carved out of the same runs.
    let mut flat_words = Vec::new();
    let mut flat_ms = Vec::new();
    let mut tree_ms = Vec::new();
    let mut leaf_words = Vec::new();
    let mut level_words: Vec<Vec<u64>> = vec![Vec::new(); TOPOLOGY_DEPTH - 1];
    for seed in 0..seeds {
        let t0 = Instant::now();
        flat_words.push(
            count_run(exec, CountAlgo::Randomized, p.k, p.eps, p.n, seed)
                .0
                .words,
        );
        flat_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        let t1 = Instant::now();
        let run = tree_count_run(exec, spec, CountAlgo::Randomized, p.k, p.eps, p.n, seed);
        tree_ms.push(t1.elapsed().as_secs_f64() * 1e3);
        leaf_words.push(run.leaf_words);
        assert_eq!(
            run.internal.len(),
            TOPOLOGY_DEPTH - 1,
            "topology panel expects a depth-{TOPOLOGY_DEPTH} tree"
        );
        for (l, load) in run.internal.iter().enumerate() {
            level_words[l].push(load.total_words());
        }
    }
    let cell = |id: String, words: Vec<u64>, millis: f64| -> Cell {
        let (lo, hi) = (
            *words.iter().min().expect("≥1 seed"),
            *words.iter().max().expect("≥1 seed"),
        );
        Cell {
            id,
            words: med_u64(words),
            millis,
            exact: false,
            words_min: lo,
            words_max: hi,
            elems_per_sec: None,
        }
    };
    let flat_ms = med_f64(flat_ms);
    let tree_ms = med_f64(tree_ms);
    let mut cells = vec![
        cell("topology/flat_root".into(), flat_words, flat_ms),
        cell("topology/leaf".into(), leaf_words, tree_ms),
    ];
    for (l, words) in level_words.into_iter().enumerate() {
        cells.push(cell(format!("topology/level{}", l + 1), words, tree_ms));
    }
    cells
}

/// Measure the wire-codec panel: the same nine protocol scenarios as
/// [`measure_cells`]'s exact word cells, but recording total **codec
/// bytes** (`CommSpace::bytes` — every message's measured size under
/// `dtrack_sim::wire`) in the cell's `words` slot, under ids prefixed
/// `bytes/`.
///
/// The cells are **advisory** (`exact: false`) by design: the byte
/// totals are deterministic on the lock-step executor, but the codec is
/// an encoding choice, not protocol behavior — varint width tuning or a
/// tag reshuffle must not demand the hard-gate ritual reserved for word
/// (≡ algorithm) changes. The words cells stay the proof obligation;
/// these watch the bytes-per-word ratio against the recorded range.
pub fn measure_wire_cells(p: Params) -> Vec<Cell> {
    let exec = ExecConfig::lockstep();
    let (n, k, eps) = (p.n, p.k, p.eps);
    type ByteFn<'a> = (&'a str, Box<dyn Fn(u64) -> u64>);
    let cells: Vec<ByteFn> = vec![
        (
            "bytes/count/deterministic",
            Box::new(move |s| {
                count_run(exec, CountAlgo::Deterministic, k, eps, n, s)
                    .0
                    .bytes
            }),
        ),
        (
            "bytes/count/randomized",
            Box::new(move |s| count_run(exec, CountAlgo::Randomized, k, eps, n, s).0.bytes),
        ),
        (
            "bytes/count/sampling",
            Box::new(move |s| count_run(exec, CountAlgo::Sampling, k, eps, n, s).0.bytes),
        ),
        (
            "bytes/frequency/deterministic",
            Box::new(move |s| {
                frequency_run(exec, FreqAlgo::Deterministic, k, eps, n, s)
                    .0
                    .bytes
            }),
        ),
        (
            "bytes/frequency/randomized",
            Box::new(move |s| {
                frequency_run(exec, FreqAlgo::Randomized, k, eps, n, s)
                    .0
                    .bytes
            }),
        ),
        (
            "bytes/rank/deterministic",
            Box::new(move |s| {
                rank_run(exec, RankAlgo::Deterministic, k, eps, n, s)
                    .0
                    .bytes
            }),
        ),
        (
            "bytes/rank/randomized",
            Box::new(move |s| rank_run(exec, RankAlgo::Randomized, k, eps, n, s).0.bytes),
        ),
        (
            "bytes/count/windowed",
            Box::new(move |s| {
                count_run(exec.windowed(n / 4), CountAlgo::Randomized, k, eps, n, s)
                    .0
                    .bytes
            }),
        ),
        (
            "bytes/frequency/windowed",
            Box::new(move |s| {
                frequency_run(exec.windowed(n / 4), FreqAlgo::Randomized, k, eps, n, s)
                    .0
                    .bytes
            }),
        ),
    ];
    cells
        .into_iter()
        .map(|(id, f)| {
            let mut bytes = Vec::new();
            let mut millis = Vec::new();
            for seed in 0..p.seeds {
                let t0 = Instant::now();
                bytes.push(f(seed));
                millis.push(t0.elapsed().as_secs_f64() * 1e3);
            }
            let (lo, hi) = (
                *bytes.iter().min().expect("≥1 seed"),
                *bytes.iter().max().expect("≥1 seed"),
            );
            Cell {
                id: id.to_string(),
                words: med_u64(bytes),
                millis: med_f64(millis),
                exact: false,
                words_min: lo,
                words_max: hi,
                elems_per_sec: None,
            }
        })
        .collect()
}

/// Elements fed per throughput cell when the `perf_baseline` binary
/// measures ingest rates. Large enough that ring wraparound, credit
/// stalls, and park/unpark cycles all happen thousands of times; small
/// enough that three runs of two cells stay in CI budget.
pub const THROUGHPUT_ELEMS: u64 = 2_000_000;

/// One timed ingest through the channel runtime: build the executor,
/// pre-build the round-robin batch *outside* the timer, then time
/// ingest + quiesce. `per_element` selects the `feed` loop (one ring
/// push per element) instead of the coalesced `feed_batch` fast path.
fn throughput_run(k: usize, eps: f64, n: u64, seed: u64, per_element: bool) -> (u64, f64) {
    use dtrack_core::count::RandomizedCount;
    use dtrack_core::TrackingConfig;
    use dtrack_sim::Executor;

    let proto = RandomizedCount::new(TrackingConfig::new(k, eps));
    let batch: Vec<(usize, u64)> = (0..n).map(|t| ((t % k as u64) as usize, t)).collect();
    let mut ex = ExecConfig::channel().build(&proto, seed);
    let t0 = Instant::now();
    if per_element {
        for (site, item) in batch {
            ex.feed(site, item);
        }
    } else {
        ex.feed_batch(batch);
    }
    ex.quiesce();
    let secs = t0.elapsed().as_secs_f64();
    let st = ex.stats();
    (st.up_words + st.down_words, n as f64 / secs)
}

/// Measure the ingest-throughput panel: the channel runtime fed `n`
/// elements through the coalesced batch path (`throughput/channel`) and
/// through the per-element `feed` path (`throughput/channel_feed`).
///
/// Kept separate from [`measure_cells`] because these cells answer a
/// different question — "how fast does the concurrent ingest path move
/// elements" rather than "how many words does a protocol send" — and
/// their headline number ([`Cell::elems_per_sec`]) is machine-dependent.
/// Words are still recorded (as a distribution — thread interleaving
/// makes them inexact) so the cells also guard against communication
/// blowups on the ingest path.
pub fn measure_throughput_cells(p: Params, n: u64) -> Vec<Cell> {
    const RUNS: u64 = 3;
    let mk = |id: &str, per_element: bool| -> Cell {
        let mut words = Vec::new();
        let mut rates = Vec::new();
        let mut millis = Vec::new();
        for seed in 0..RUNS {
            let t0 = Instant::now();
            let (w, rate) = throughput_run(p.k, p.eps, n, seed, per_element);
            millis.push(t0.elapsed().as_secs_f64() * 1e3);
            words.push(w);
            rates.push(rate);
        }
        let (lo, hi) = (
            *words.iter().min().expect("≥1 run"),
            *words.iter().max().expect("≥1 run"),
        );
        Cell {
            id: id.to_string(),
            words: med_u64(words),
            millis: med_f64(millis),
            exact: false,
            words_min: lo,
            words_max: hi,
            elems_per_sec: Some(med_f64(rates)),
        }
    };
    vec![
        mk("throughput/channel", false),
        mk("throughput/channel_feed", true),
    ]
}

/// Elements fed per query-storm cell. Smaller than
/// [`THROUGHPUT_ELEMS`]: the measurement window only has to be long
/// enough that readers observe thousands of distinct snapshot epochs,
/// and each cell runs `RUNS × readers` threads.
pub const QUERY_STORM_ELEMS: u64 = 1_000_000;

/// Reader threads driven by the aggregate `queries/storm` cell (the
/// acceptance scenario: ≥ 4 concurrent readers against live ingest).
pub const QUERY_STORM_READERS: usize = 4;

/// One query-storm run: spawn `readers` threads each hammering its own
/// clone of the executor's [`QueryHandle`] while the main thread feeds
/// `n` elements through the channel runtime's coalesced batch path,
/// then quiesces. Readers check snapshot self-consistency (finite
/// estimate, monotone epochs) on every read. Returns `(words, queries,
/// aggregate queries/sec over the ingest window)`.
///
/// Shared between [`measure_query_cells`] and the `query_storm` binary
/// so the committed advisory cells and the interactive storm measure
/// the same thing.
///
/// [`QueryHandle`]: dtrack_sim::snapshot::QueryHandle
pub fn query_storm_run(k: usize, eps: f64, n: u64, readers: usize, seed: u64) -> (u64, u64, f64) {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    use dtrack_core::count::RandomizedCount;
    use dtrack_core::TrackingConfig;
    use dtrack_sim::Executor;

    let proto = RandomizedCount::new(TrackingConfig::new(k, eps));
    let batch: Vec<(usize, u64)> = (0..n).map(|t| ((t % k as u64) as usize, t)).collect();
    let mut ex = ExecConfig::channel().build(&proto, seed);
    let handle = ex.query_handle();
    let stop = Arc::new(AtomicBool::new(false));
    let joins: Vec<_> = (0..readers)
        .map(|_| {
            let h = handle.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut queries = 0u64;
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (epoch, est) = h.read(|s| (s.epoch, s.state.estimate()));
                    assert!(est.is_finite(), "live estimate must be finite");
                    assert!(epoch >= last_epoch, "snapshot epoch went backwards");
                    last_epoch = epoch;
                    queries += 1;
                }
                queries
            })
        })
        .collect();
    let t0 = Instant::now();
    ex.feed_batch(batch);
    ex.quiesce();
    let secs = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Relaxed);
    let queries: u64 = joins
        .into_iter()
        .map(|j| j.join().expect("reader thread panicked"))
        .sum();
    let st = ex.stats();
    (st.up_words + st.down_words, queries, queries as f64 / secs)
}

/// Measure the live-query panel: reader threads answering count queries
/// from published snapshots while the channel runtime ingests at full
/// speed. `queries/single` runs one reader (per-handle rate);
/// `queries/storm` runs [`QUERY_STORM_READERS`] readers (aggregate
/// rate — hazard-pointer reads scale because readers never contend).
///
/// Like the `throughput/*` panel, the headline number
/// ([`Cell::elems_per_sec`], here *queries*/second) is machine-dependent:
/// `--bootstrap` refreshes it and `--check` compares it advisorily.
/// Words still guard the ingest path's communication behavior (as a
/// distribution — thread interleaving makes them inexact).
pub fn measure_query_cells(p: Params, n: u64) -> Vec<Cell> {
    const RUNS: u64 = 3;
    let mk = |id: &str, readers: usize| -> Cell {
        let mut words = Vec::new();
        let mut rates = Vec::new();
        let mut millis = Vec::new();
        for seed in 0..RUNS {
            let t0 = Instant::now();
            let (w, _queries, rate) = query_storm_run(p.k, p.eps, n, readers, seed);
            millis.push(t0.elapsed().as_secs_f64() * 1e3);
            words.push(w);
            rates.push(rate);
        }
        let (lo, hi) = (
            *words.iter().min().expect("≥1 run"),
            *words.iter().max().expect("≥1 run"),
        );
        Cell {
            id: id.to_string(),
            words: med_u64(words),
            millis: med_f64(millis),
            exact: false,
            words_min: lo,
            words_max: hi,
            elems_per_sec: Some(med_f64(rates)),
        }
    };
    vec![
        mk("queries/single", 1),
        mk("queries/storm", QUERY_STORM_READERS),
    ]
}

/// Serialize a baseline document.
pub fn to_json(p: Params, cells: &[Cell]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"version\": 1,\n");
    s.push_str(&format!(
        "  \"params\": {{\"n\": {}, \"k\": {}, \"eps\": {}, \"seeds\": {}}},\n",
        p.n, p.k, p.eps, p.seeds
    ));
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        // Exact cells are gated on their median alone (any drift there
        // is hard), so their per-seed spread is not persisted; inexact
        // cells persist their recorded words distribution.
        let range = if c.exact {
            String::new()
        } else {
            format!(
                ", \"words_min\": {}, \"words_max\": {}",
                c.words_min, c.words_max
            )
        };
        let rate = match c.elems_per_sec {
            Some(r) => format!(", \"elems_per_sec\": {r:.0}"),
            None => String::new(),
        };
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"words\": {}, \"millis\": {:.3}, \"exact\": {}{}{}}}{}\n",
            c.id,
            c.words,
            c.millis,
            c.exact,
            range,
            rate,
            if i + 1 < cells.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extract the JSON value following `"key":` in `obj` (a flat object
/// slice produced by [`to_json`]). Returns the raw token up to the next
/// `,`, `}` or `]`.
fn field<'a>(obj: &'a str, key: &str) -> Result<&'a str, String> {
    let pat = format!("\"{key}\":");
    let start = obj
        .find(&pat)
        .ok_or_else(|| format!("missing field {key:?} in {obj:?}"))?
        + pat.len();
    let rest = obj[start..].trim_start();
    let end = rest
        .find([',', '}', ']'])
        .ok_or_else(|| format!("unterminated field {key:?}"))?;
    Ok(rest[..end].trim())
}

fn unquote(s: &str) -> Result<&str, String> {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected string, got {s:?}"))
}

/// Parse a document produced by [`to_json`]. This is deliberately *not*
/// a general JSON parser — it accepts exactly the flat schema this
/// module writes (and errors loudly on anything else). The `exact` cell
/// field defaults to `true` when absent, so pre-`exact` baselines still
/// parse (their cells were all lock-step).
pub fn parse_json(s: &str) -> Result<(Params, Vec<Cell>), String> {
    let version: u32 = field(s, "version")?
        .parse()
        .map_err(|e| format!("bad version: {e}"))?;
    if version != 1 {
        return Err(format!("unsupported baseline version {version}"));
    }
    let pstart = s
        .find("\"params\"")
        .ok_or_else(|| "missing params".to_string())?;
    let pobj = &s[pstart
        ..s[pstart..]
            .find('}')
            .map(|i| pstart + i + 1)
            .unwrap_or(s.len())];
    let params = Params {
        n: field(pobj, "n")?
            .parse()
            .map_err(|e| format!("bad n: {e}"))?,
        k: field(pobj, "k")?
            .parse()
            .map_err(|e| format!("bad k: {e}"))?,
        eps: field(pobj, "eps")?
            .parse()
            .map_err(|e| format!("bad eps: {e}"))?,
        seeds: field(pobj, "seeds")?
            .parse()
            .map_err(|e| format!("bad seeds: {e}"))?,
    };
    let cstart = s
        .find("\"cells\"")
        .ok_or_else(|| "missing cells".to_string())?;
    let carr = &s[cstart..];
    let mut cells = Vec::new();
    let mut rest = carr;
    while let Some(open) = rest.find('{') {
        let close = rest[open..]
            .find('}')
            .ok_or_else(|| "unterminated cell object".to_string())?
            + open;
        let obj = &rest[open..=close];
        let words: u64 = field(obj, "words")?
            .parse()
            .map_err(|e| format!("bad words: {e}"))?;
        // Optional range fields (written for inexact cells only; absent
        // in pre-distribution baselines): default to the median, i.e. a
        // degenerate range.
        let opt = |key: &str| -> Result<u64, String> {
            match field(obj, key) {
                Ok(v) => v.parse().map_err(|e| format!("bad {key}: {e}")),
                Err(_) => Ok(words),
            }
        };
        cells.push(Cell {
            id: unquote(field(obj, "id")?)?.to_string(),
            words,
            millis: field(obj, "millis")?
                .parse()
                .map_err(|e| format!("bad millis: {e}"))?,
            exact: match field(obj, "exact") {
                Ok(v) => v.parse().map_err(|e| format!("bad exact: {e}"))?,
                Err(_) => true,
            },
            words_min: opt("words_min")?,
            words_max: opt("words_max")?,
            elems_per_sec: match field(obj, "elems_per_sec") {
                Ok(v) => Some(v.parse().map_err(|e| format!("bad elems_per_sec: {e}"))?),
                Err(_) => None,
            },
        });
        rest = &rest[close + 1..];
    }
    if cells.is_empty() {
        return Err("baseline contains no cells".to_string());
    }
    Ok((params, cells))
}

/// Outcome of [`compare`]: findings that must fail the build vs.
/// findings that are informational.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Comparison {
    /// Deterministic signals — word drift on an exact cell, a missing or
    /// unknown cell. CI fails on any of these.
    pub hard: Vec<String>,
    /// Noisy signals — wall-time drift anywhere, word drift on inexact
    /// (thread-timed) cells. Printed, never failing.
    pub advisory: Vec<String>,
}

impl Comparison {
    /// Whether the comparison found nothing at all.
    pub fn is_empty(&self) -> bool {
        self.hard.is_empty() && self.advisory.is_empty()
    }
}

/// Compare a current run against the baseline.
///
/// * **Exact cells** (lock-step): `words` are deterministic given the
///   seed set, so *any* drift is a hard finding — more communication is
///   a regression, less is an improvement worth re-baselining; either
///   way the baseline must be regenerated deliberately.
/// * **Inexact cells** (channel runtime): words drift with thread
///   timing, so the baseline records a distribution, not a point. The
///   current median is compared against the recorded `[min, max]` range
///   widened by ±`loose_word_tol` (relative) on each edge; outside that
///   it is reported advisorily. (A median pretending to be exact was
///   the old behavior — a thread-timed cell never deserves a hard gate.)
/// * `millis` beyond `time_factor`× the baseline is always advisory —
///   wall time is machine- and load-dependent even after a same-machine
///   bootstrap.
pub fn compare(
    baseline: &[Cell],
    current: &[Cell],
    loose_word_tol: f64,
    time_factor: f64,
) -> Comparison {
    let mut out = Comparison::default();
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.id == b.id) else {
            out.hard
                .push(format!("{}: cell missing from current run", b.id));
            continue;
        };
        let drift = (c.words as f64 - b.words as f64) / (b.words as f64).max(1.0);
        let lo = b.words_min as f64 * (1.0 - loose_word_tol);
        let hi = b.words_max as f64 * (1.0 + loose_word_tol);
        if b.exact && c.words != b.words {
            out.hard.push(format!(
                "{}: words {} -> {} ({:+.2}%, exact cell — any drift is a \
                 behavior change)",
                b.id,
                b.words,
                c.words,
                drift * 1e2
            ));
        } else if !b.exact && ((c.words as f64) < lo || (c.words as f64) > hi) {
            out.advisory.push(format!(
                "{}: words {} outside recorded range [{}, {}] ±{:.0}% \
                 (median was {}, {:+.1}%)",
                b.id,
                c.words,
                b.words_min,
                b.words_max,
                loose_word_tol * 1e2,
                b.words,
                drift * 1e2
            ));
        }
        if c.millis > b.millis * time_factor {
            out.advisory.push(format!(
                "{}: wall time {:.2}ms -> {:.2}ms (> {:.1}x baseline)",
                b.id, b.millis, c.millis, time_factor
            ));
        }
        // Ingest throughput is machine- and load-dependent exactly like
        // wall time, so a drop past the same factor is advisory: loud
        // enough to notice a serialized fast path, never build-failing.
        if let (Some(br), Some(cr)) = (b.elems_per_sec, c.elems_per_sec) {
            if cr * time_factor < br {
                out.advisory.push(format!(
                    "{}: throughput {:.2}M elem/s -> {:.2}M elem/s \
                     (< baseline/{:.1})",
                    b.id,
                    br / 1e6,
                    cr / 1e6,
                    time_factor
                ));
            }
        }
    }
    for c in current {
        if !baseline.iter().any(|b| b.id == c.id) {
            out.hard.push(format!(
                "{}: new cell not in baseline (re-run without --check)",
                c.id
            ));
        }
    }
    out
}

/// Produce the bootstrap of `stored` for this machine: keep the stored
/// (committed) words and exactness — they are the cross-machine signal —
/// but replace every wall-time (and recorded ingest throughput) with
/// the one just measured here, so a subsequent [`compare`] judges
/// timing against *this* machine's speed rather than whichever machine
/// wrote the baseline.
///
/// Cells measured now but absent from the stored baseline are
/// deliberately **not** added: the bootstrapped file must stay
/// cell-for-cell identical to the committed one so that `--check`'s
/// "new cell not in baseline" hard finding still fires — appending them
/// here would quietly launder an un-baselined cell past CI.
pub fn bootstrap(stored: &[Cell], measured: &[Cell]) -> Vec<Cell> {
    let mut out: Vec<Cell> = stored.to_vec();
    for cell in &mut out {
        if let Some(m) = measured.iter().find(|m| m.id == cell.id) {
            cell.millis = m.millis;
            // Throughput is machine-dependent like wall time; refresh it
            // so the subsequent check compares against this machine.
            if cell.elems_per_sec.is_some() && m.elems_per_sec.is_some() {
                cell.elems_per_sec = m.elems_per_sec;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cells() -> Vec<Cell> {
        vec![
            Cell {
                id: "count/randomized".into(),
                words: 1234,
                millis: 5.125,
                exact: true,
                words_min: 1234,
                words_max: 1234,
                elems_per_sec: None,
            },
            Cell {
                id: "rank/deterministic".into(),
                words: 99,
                millis: 0.75,
                exact: true,
                words_min: 99,
                words_max: 99,
                elems_per_sec: None,
            },
            Cell {
                id: "window/channel".into(),
                words: 5000,
                millis: 2.5,
                exact: false,
                words_min: 4600,
                words_max: 5400,
                elems_per_sec: None,
            },
            Cell {
                id: "throughput/channel".into(),
                words: 800,
                millis: 120.0,
                exact: false,
                words_min: 700,
                words_max: 900,
                elems_per_sec: Some(5_000_000.0),
            },
        ]
    }

    #[test]
    fn json_round_trips() {
        let p = Params::default_ci();
        let cells = sample_cells();
        let (p2, cells2) = parse_json(&to_json(p, &cells)).unwrap();
        assert_eq!(p, p2);
        assert_eq!(cells, cells2);
    }

    #[test]
    fn parse_defaults_exact_for_legacy_cells() {
        let legacy = "{\n  \"version\": 1,\n  \"params\": {\"n\": 10, \"k\": 2, \
                      \"eps\": 0.1, \"seeds\": 1},\n  \"cells\": [\n    \
                      {\"id\": \"count/randomized\", \"words\": 7, \"millis\": 1.0}\n  ]\n}\n";
        let (_, cells) = parse_json(legacy).unwrap();
        assert!(cells[0].exact, "legacy cells are all lock-step → exact");
        assert_eq!(cells[0].words_min, 7, "absent range defaults to median");
        assert_eq!(cells[0].words_max, 7, "absent range defaults to median");
        assert_eq!(cells[0].elems_per_sec, None, "absent rate stays None");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_json("").is_err());
        assert!(parse_json("{\"version\": 2}").is_err());
        assert!(parse_json("{\"version\": 1, \"cells\": []}").is_err());
    }

    #[test]
    fn compare_splits_hard_and_advisory_findings() {
        let base = sample_cells();
        let mut cur = sample_cells();
        assert!(compare(&base, &cur, 0.25, 3.0).is_empty());
        cur[0].words = 1235; // exact cell: off by one word → hard
        cur[1].millis = 10.0; // 13x → advisory
        cur[2].words = 7000; // inexact: above max·1.25 = 6750 → advisory
        let c = compare(&base, &cur, 0.25, 3.0);
        assert_eq!(c.hard.len(), 1, "{c:?}");
        assert!(c.hard[0].contains("count/randomized"));
        assert_eq!(c.advisory.len(), 2, "{c:?}");
        assert!(c.advisory.iter().any(|f| f.contains("wall time")));
        assert!(c
            .advisory
            .iter()
            .any(|f| f.contains("window/channel") && f.contains("recorded range")));
    }

    #[test]
    fn compare_tolerates_words_inside_the_recorded_range() {
        let base = sample_cells();
        let mut cur = sample_cells();
        cur[2].words = 4600; // at the range's low edge: fine
        assert!(compare(&base, &cur, 0.25, 3.0).is_empty());
        cur[2].words = 6700; // above max but within max·1.25: fine
        assert!(compare(&base, &cur, 0.25, 3.0).is_empty());
        cur[2].words = 3400; // below min·0.75 = 3450 → advisory
        let c = compare(&base, &cur, 0.25, 3.0);
        assert_eq!(c.hard.len(), 0, "{c:?}");
        assert_eq!(c.advisory.len(), 1, "{c:?}");
    }

    #[test]
    fn compare_flags_throughput_collapse_advisorily() {
        let base = sample_cells();
        let mut cur = sample_cells();
        cur[3].elems_per_sec = Some(2_000_000.0); // > baseline/3: fine
        assert!(compare(&base, &cur, 0.25, 3.0).is_empty());
        cur[3].elems_per_sec = Some(1_000_000.0); // < 5M/3 → advisory
        let c = compare(&base, &cur, 0.25, 3.0);
        assert_eq!(c.hard.len(), 0, "throughput never fails the build: {c:?}");
        assert_eq!(c.advisory.len(), 1, "{c:?}");
        assert!(c.advisory[0].contains("throughput"), "{c:?}");
    }

    #[test]
    fn compare_flags_missing_and_new_cells_as_hard() {
        let base = sample_cells();
        let cur = vec![
            base[0].clone(),
            Cell {
                id: "novel/cell".into(),
                words: 1,
                millis: 1.0,
                exact: true,
                words_min: 1,
                words_max: 1,
                elems_per_sec: None,
            },
        ];
        let c = compare(&base, &cur, 0.25, 3.0);
        assert!(c.hard.iter().any(|f| f.contains("missing")));
        assert!(c.hard.iter().any(|f| f.contains("not in baseline")));
    }

    #[test]
    fn bootstrap_keeps_words_and_refreshes_millis() {
        let stored = sample_cells();
        let mut measured = sample_cells();
        measured[0].words = 9999; // must NOT leak into the bootstrap
        measured[0].millis = 42.0; // must replace the stored timing
        measured.push(Cell {
            id: "brand/new".into(),
            words: 5,
            millis: 0.5,
            exact: true,
            words_min: 5,
            words_max: 5,
            elems_per_sec: None,
        });
        let rate_at = measured
            .iter()
            .position(|c| c.id == "throughput/channel")
            .unwrap();
        measured[rate_at].elems_per_sec = Some(7_500_000.0);
        let b = bootstrap(&stored, &measured);
        let first = b.iter().find(|c| c.id == "count/randomized").unwrap();
        assert_eq!(first.words, 1234, "stored words survive bootstrap");
        assert_eq!(first.millis, 42.0, "millis refreshed from this machine");
        let rate = b.iter().find(|c| c.id == "throughput/channel").unwrap();
        assert_eq!(
            rate.elems_per_sec,
            Some(7_500_000.0),
            "throughput refreshed from this machine like wall time"
        );
        // An un-baselined cell must NOT be smuggled into the bootstrapped
        // file — `--check` has to keep flagging it as a hard finding.
        assert!(
            !b.iter().any(|c| c.id == "brand/new"),
            "bootstrap must not append cells missing from the baseline"
        );
        let c = compare(&b, &measured, 0.25, 1_000.0);
        assert!(
            c.hard.iter().any(|f| f.contains("brand/new")),
            "post-bootstrap check still hard-flags the new cell: {c:?}"
        );
    }

    #[test]
    fn throughput_cells_record_rates_and_word_ranges() {
        let p = Params {
            n: 4_000,
            k: 4,
            eps: 0.2,
            seeds: 1,
        };
        // Tiny n: this smoke-checks the panel's plumbing, not its rates.
        let cells = measure_throughput_cells(p, 20_000);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].id, "throughput/channel");
        assert_eq!(cells[1].id, "throughput/channel_feed");
        for c in &cells {
            assert!(!c.exact, "{}: thread-timed words are never exact", c.id);
            let rate = c.elems_per_sec.expect("throughput cells carry a rate");
            assert!(rate > 0.0, "{}: rate {rate}", c.id);
            assert!(
                c.words_min <= c.words && c.words <= c.words_max,
                "{}: median {} outside own range [{}, {}]",
                c.id,
                c.words,
                c.words_min,
                c.words_max
            );
        }
    }

    #[test]
    fn query_cells_record_rates_and_word_ranges() {
        let p = Params {
            n: 4_000,
            k: 4,
            eps: 0.2,
            seeds: 1,
        };
        // Tiny n: this smoke-checks the panel's plumbing (threads spawn,
        // handles clone, reads stay consistent), not its rates.
        let cells = measure_query_cells(p, 20_000);
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].id, "queries/single");
        assert_eq!(cells[1].id, "queries/storm");
        for c in &cells {
            assert!(!c.exact, "{}: thread-timed words are never exact", c.id);
            let rate = c.elems_per_sec.expect("query cells carry a rate");
            assert!(rate > 0.0, "{}: rate {rate}", c.id);
            assert!(
                c.words_min <= c.words && c.words <= c.words_max,
                "{}: median {} outside own range [{}, {}]",
                c.id,
                c.words,
                c.words_min,
                c.words_max
            );
        }
    }

    #[test]
    fn topology_cells_record_per_level_loads_advisorily() {
        let p = Params {
            n: 4_000,
            k: 16, // must fit the binary depth-4 shape (2^4 = 16)
            eps: 0.2,
            seeds: 1,
        };
        let cells = measure_topology_cells(p);
        let ids: Vec<&str> = cells.iter().map(|c| c.id.as_str()).collect();
        assert_eq!(
            ids,
            [
                "topology/flat_root",
                "topology/leaf",
                "topology/level1",
                "topology/level2",
                "topology/level3",
            ]
        );
        for c in &cells {
            assert!(!c.exact, "{}: topology cells are advisory", c.id);
            assert!(c.words > 0, "{}: no words measured", c.id);
            assert!(
                c.words_min <= c.words && c.words <= c.words_max,
                "{}: median {} outside own range [{}, {}]",
                c.id,
                c.words,
                c.words_min,
                c.words_max
            );
        }
        // The per-level profile must shrink toward the root: each level
        // aggregates more of the stream behind fewer, coarser replays.
        let level = |id: &str| cells.iter().find(|c| c.id == id).unwrap().words;
        assert!(
            level("topology/level3") < level("topology/flat_root"),
            "tree root load must undercut the flat star even at CI scale"
        );
    }

    #[test]
    fn measured_words_are_deterministic_for_exact_cells() {
        let p = Params {
            n: 4_000,
            k: 4,
            eps: 0.2,
            seeds: 1,
        };
        let a = measure_cells(p);
        let b = measure_cells(p);
        assert_eq!(a.len(), 10);
        assert_eq!(a.iter().filter(|c| !c.exact).count(), 1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.id, y.id);
            if x.exact {
                assert_eq!(x.words, y.words, "{}", x.id);
                // Degenerate only because this test runs seeds = 1; with
                // more seeds exact cells still measure a per-seed spread
                // (unpersisted — their gate is the median alone).
                assert_eq!((x.words_min, x.words_max), (x.words, x.words), "{}", x.id);
            } else {
                // Thread-timed cell: same order of magnitude, not equal.
                let ratio = x.words as f64 / y.words.max(1) as f64;
                assert!((0.2..5.0).contains(&ratio), "{}: {ratio}", x.id);
                assert!(
                    x.words_min <= x.words && x.words <= x.words_max,
                    "{}: median {} outside own range [{}, {}]",
                    x.id,
                    x.words,
                    x.words_min,
                    x.words_max
                );
            }
        }
    }
}
