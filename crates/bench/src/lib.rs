//! # dtrack-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper (see DESIGN.md §3 for
//! the experiment index and EXPERIMENTS.md for paper-vs-measured):
//!
//! | binary | experiment |
//! |---|---|
//! | `table1` | Table 1: space & communication of all seven algorithms |
//! | `exp_comm_vs_k` | √k vs k communication scaling (log-log slopes) |
//! | `exp_comm_vs_eps` | 1/ε communication scaling |
//! | `exp_comm_vs_n` | logN communication scaling (round structure) |
//! | `exp_space` | per-site space vs k and ε |
//! | `exp_accuracy` | error CDFs + median-boosted all-times correctness |
//! | `exp_figure1` | Figure 1 / Claim A.1: sampling-problem failure curve |
//! | `exp_lower_bounds` | Thm 2.2 one-way frontier; Thm 2.3/2.4 hard instances |
//! | `exp_tradeoff` | Thm 3.2 space–communication trade-off |
//! | `exp_window` | sliding-window vs whole-stream tracking (beyond the paper) |
//!
//! Run with `cargo run -p dtrack-bench --release --bin <name>`. Every
//! binary takes a trailing `EXEC` scenario argument (executor + delivery
//! policy, optionally `+window:W` — see `dtrack_sim::ExecConfig`).

pub mod baseline;
pub mod cli;
pub mod fit;
pub mod measure;
pub mod table;

pub use measure::{CommSpace, CountAlgo, FreqAlgo, RankAlgo};
