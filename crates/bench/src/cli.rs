//! Tiny positional-argument parsing for the experiment binaries.
//!
//! Every binary accepts optional positional overrides, e.g.
//! `table1 [N] [K] [EPS] [SEEDS] [EXEC]`; anything omitted — or anything
//! that fails to parse — falls back to the default. The trailing `EXEC`
//! argument selects the executor + delivery policy and, via `+` suffixes,
//! sliding-window tracking (`+window:W`) and link-fault injection
//! (`+loss:P`, `+dup:P`, `+churn[:R]`, `+straggle:S` — event modes only);
//! see [`exec_arg`].

use dtrack_sim::ExecConfig;

/// Parse positional argument `idx` (0-based, after the program name) as
/// `T`, falling back to `default`.
pub fn arg<T: std::str::FromStr>(idx: usize, default: T) -> T {
    std::env::args()
        .nth(idx + 1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Parse positional argument `idx` as an [`ExecConfig`] scenario spec
/// (`lockstep | channel | event[:instant] | event:fixed:D |
/// event:random:MIN:MAX | event:reorder:W`, each optionally suffixed
/// `+window:W` for sliding-window tracking and — on event modes —
/// `+loss:P+dup:P+churn[:R]+straggle:S` for link faults), defaulting to
/// [`ExecConfig::lockstep`] when absent.
///
/// Unlike [`arg`], a *malformed* spec aborts with a message instead of
/// silently falling back: an experiment silently run under the wrong
/// execution model would be far worse than a startup error.
pub fn exec_arg(idx: usize) -> ExecConfig {
    match std::env::args().nth(idx + 1) {
        None => ExecConfig::lockstep(),
        Some(s) => s.parse().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        }),
    }
}

/// Standard experiment banner.
pub fn banner(name: &str, detail: &str) {
    println!("== {name} ==");
    println!("{detail}");
    println!();
}
