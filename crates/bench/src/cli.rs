//! Tiny positional-argument parsing for the experiment binaries.
//!
//! Every binary accepts optional positional overrides, e.g.
//! `table1 [N] [K] [EPS] [SEEDS]`; anything omitted — or anything that
//! fails to parse — falls back to the default.

/// Parse positional argument `idx` (0-based, after the program name) as
/// `T`, falling back to `default`.
pub fn arg<T: std::str::FromStr>(idx: usize, default: T) -> T {
    std::env::args()
        .nth(idx + 1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Standard experiment banner.
pub fn banner(name: &str, detail: &str) {
    println!("== {name} ==");
    println!("{detail}");
    println!();
}
