//! Regression pin for the fault-RNG stream split: fault randomness
//! lives in its own PRNG streams (`fault_seed` / per-link concerns),
//! so growing the fault layer must leave every **fault-free** run
//! bit-identical — in particular the stored perf-baseline matrix.
//!
//! This test re-measures the baseline cells at the *stored* params and
//! asserts the exact cells' word counts match `BENCH_baseline.json`
//! word for word. If it fails, some change leaked into the fault-free
//! RNG or message schedule; re-baselining is the *last* resort, not
//! the fix.
//!
//! Release-gated: the measurement matrix is too slow for debug CI.

use dtrack_bench::baseline::{measure_cells, parse_json};

const STORED: &str = include_str!("../../../BENCH_baseline.json");

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "re-measures the perf baseline matrix; release CI only"
)]
fn exact_baseline_cells_stay_bit_identical_in_words() {
    let (params, stored) = parse_json(STORED).expect("BENCH_baseline.json must parse");
    let measured = measure_cells(params);
    let mut checked = 0usize;
    for cell in stored.iter().filter(|c| c.exact) {
        let now = measured
            .iter()
            .find(|m| m.id == cell.id)
            .unwrap_or_else(|| panic!("cell {} vanished from the matrix", cell.id));
        assert_eq!(
            (now.words, now.exact),
            (cell.words, true),
            "exact cell {} drifted from the stored baseline",
            cell.id
        );
        checked += 1;
    }
    // The matrix currently pins 9 exact cells; never let the filter
    // silently degrade to checking nothing.
    assert!(checked >= 8, "only {checked} exact cells found");
}
