//! Smoke test for the `table1` experiment harness: runs the binary's
//! core measurement path (`count_run` / `frequency_run` / `rank_run`,
//! exactly what `table1` medians over) at tiny N and asserts the
//! orderings Table 1 predicts — the randomized √k protocols beat the
//! deterministic k baselines on total words. Catches regressions in the
//! experiment harness itself, which previously had no golden outputs.

use dtrack_bench::measure::{
    count_run, frequency_run, rank_run, CommSpace, CountAlgo, FreqAlgo, RankAlgo,
};
use dtrack_sim::ExecConfig;

const K: usize = 64;
const EPS: f64 = 0.05;
const N: u64 = 20_000;
const SEEDS: u64 = 3;

/// Median-by-words over seeds, like the binary's `med` helper.
fn median_words(f: impl Fn(u64) -> (CommSpace, f64)) -> (u64, f64) {
    let mut runs: Vec<(CommSpace, f64)> = (0..SEEDS).map(f).collect();
    runs.sort_by_key(|r| r.0.words);
    let mid = runs[runs.len() / 2];
    (mid.0.words, mid.1)
}

#[test]
fn randomized_count_beats_deterministic_words() {
    let exec = ExecConfig::lockstep();
    let (rand, rand_err) = median_words(|s| count_run(exec, CountAlgo::Randomized, K, EPS, N, s));
    let (det, det_err) = median_words(|s| count_run(exec, CountAlgo::Deterministic, K, EPS, N, s));
    assert!(
        rand < det,
        "√k ordering violated: randomized {rand} ≥ deterministic {det}"
    );
    assert!(rand_err < 0.5 && det_err < 0.5);
}

#[test]
fn randomized_frequency_beats_deterministic_words() {
    let exec = ExecConfig::lockstep();
    let (rand, rand_err) =
        median_words(|s| frequency_run(exec, FreqAlgo::Randomized, K, EPS, N, s));
    let (det, det_err) =
        median_words(|s| frequency_run(exec, FreqAlgo::Deterministic, K, EPS, N, s));
    assert!(
        rand < det,
        "√k ordering violated: randomized {rand} ≥ deterministic {det}"
    );
    assert!(rand_err < 0.5 && det_err < 0.5);
}

#[test]
fn randomized_rank_beats_deterministic_words() {
    let exec = ExecConfig::lockstep();
    let (rand, rand_err) = median_words(|s| rank_run(exec, RankAlgo::Randomized, K, EPS, N, s));
    let (det, det_err) = median_words(|s| rank_run(exec, RankAlgo::Deterministic, K, EPS, N, s));
    assert!(
        rand < det,
        "√k ordering violated: randomized {rand} ≥ deterministic {det}"
    );
    assert!(rand_err < 0.5 && det_err < 0.5);
}

#[test]
fn sampling_words_are_roughly_k_independent() {
    // The [9] baseline costs O(1/ε²·logN) words regardless of k: growing
    // k by 16× must not grow its cost by more than a small factor.
    let exec = ExecConfig::lockstep();
    let (small_k, _) = median_words(|s| count_run(exec, CountAlgo::Sampling, 4, EPS, N, s));
    let (large_k, _) = median_words(|s| count_run(exec, CountAlgo::Sampling, K, EPS, N, s));
    let ratio = large_k as f64 / small_k.max(1) as f64;
    assert!(
        ratio < 3.0,
        "sampling cost grew {ratio:.2}x from k=4 to k={K} (should be ~flat)"
    );
}
