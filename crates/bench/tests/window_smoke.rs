//! Smoke test for the `exp_window` experiment harness: runs its core
//! measurement path (the windowed run functions, exactly what the
//! binary medians over) at tiny N on **all three executors** and
//! asserts the invariants the windowed-vs-whole comparison relies on:
//! the table can be produced end-to-end everywhere, windowing costs
//! extra words (epoch restarts + heartbeats), and the windowed error is
//! measured against the sliding truth (finite, sane).

use dtrack_bench::measure::{count_run, frequency_run, rank_run, CountAlgo, FreqAlgo, RankAlgo};
use dtrack_sim::{DeliveryPolicy, ExecConfig};

const K: usize = 8;
const EPS: f64 = 0.1;
const N: u64 = 12_000;
const W: u64 = 3_000;
const SEED: u64 = 2;

fn execs() -> [ExecConfig; 3] {
    [
        ExecConfig::lockstep(),
        ExecConfig::event(DeliveryPolicy::Instant),
        ExecConfig::channel(),
    ]
}

#[test]
fn windowed_count_emits_on_all_three_executors() {
    for exec in execs() {
        let (whole, whole_err) = count_run(exec, CountAlgo::Randomized, K, EPS, N, SEED);
        let (win, win_err) = count_run(exec.windowed(W), CountAlgo::Randomized, K, EPS, N, SEED);
        assert!(whole.words > 0 && win.words > 0, "{exec}");
        assert!(
            win.words > whole.words,
            "{exec}: windowing should cost extra words ({} ≤ {})",
            win.words,
            whole.words
        );
        assert!(whole_err.is_finite() && win_err.is_finite(), "{exec}");
        // One accuracy bar for all three executors: the channel
        // runtime's transport fairness (out-of-band seal delivery +
        // per-site credit cap) keeps its windowed answers as tight as
        // the deterministic paths' — see `dtrack_sim::runtime`.
        assert!(win_err < 0.5, "{exec} windowed err {win_err}");
    }
}

#[test]
fn windowed_frequency_and_rank_emit_on_the_deterministic_executors() {
    for exec in execs().into_iter().take(2) {
        let (fcs, ferr) = frequency_run(exec.windowed(W), FreqAlgo::Deterministic, K, EPS, N, SEED);
        assert!(fcs.words > 0 && ferr < 0.25, "{exec} freq err {ferr}");
        let (rcs, rerr) = rank_run(exec.windowed(W), RankAlgo::Sampling, K, EPS, N, SEED);
        assert!(rcs.words > 0 && rerr < 0.25, "{exec} rank err {rerr}");
    }
}

#[test]
fn lockstep_and_event_windowed_runs_agree_bit_for_bit() {
    // The windowed adapter must preserve the exec layer's equivalence
    // guarantee: identical accounting and identical answers under
    // instant delivery.
    let a = count_run(
        ExecConfig::lockstep().windowed(W),
        CountAlgo::Randomized,
        K,
        EPS,
        N,
        SEED,
    );
    let b = count_run(
        ExecConfig::event(DeliveryPolicy::Instant).windowed(W),
        CountAlgo::Randomized,
        K,
        EPS,
        N,
        SEED,
    );
    assert_eq!(a.0.words, b.0.words);
    assert_eq!(a.0.msgs, b.0.msgs);
    assert_eq!(
        a.1.to_bits(),
        b.1.to_bits(),
        "windowed answers must be bit-identical"
    );
}
