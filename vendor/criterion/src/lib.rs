//! Offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the API surface dtrack's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`Throughput`], [`black_box`],
//! [`criterion_group!`], [`criterion_main!`] — backed by a simple
//! median-of-samples wall-clock timer instead of criterion's full
//! statistical machinery.
//!
//! Reported numbers are honest medians with per-iteration calibration,
//! good enough to compare sketches and protocols against each other on
//! one machine. They lack criterion's outlier analysis, regression
//! detection, and HTML reports; when the real crate is available, the
//! workspace dependency can be repointed without touching bench code.
//!
//! Passing `--test` (as `cargo test` does for bench targets) runs every
//! benchmark exactly once, as a smoke test, without timing loops.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched
/// code. Delegates to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for reporting throughput alongside timings.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// How a benchmark run executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full timing loops.
    Measure,
    /// One iteration per benchmark (`--test` smoke mode).
    Test,
}

/// The timing loop driver handed to each benchmark closure.
pub struct Bencher {
    mode: Mode,
    samples: usize,
    /// Median per-iteration time of the last `iter` call, if measured.
    last: Option<Duration>,
}

impl Bencher {
    /// Time `f`, storing the median per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode == Mode::Test {
            black_box(f());
            self.last = None;
            return;
        }
        // Calibrate: grow the batch until one batch costs ≥ ~2ms, so
        // cheap bodies aren't dominated by timer resolution.
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let el = t.elapsed();
            if el >= Duration::from_millis(2) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        // Sample.
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                t.elapsed() / batch as u32
            })
            .collect();
        times.sort_unstable();
        self.last = Some(times[times.len() / 2]);
    }
}

/// A named collection of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    /// Group-scoped sample count (as in real criterion), so one group's
    /// `sample_size` cannot leak into later groups.
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Report throughput (per [`Throughput`] unit) next to timings.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Set the number of timing samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(3);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        let samples = self.samples;
        self.criterion.run_one(&full, throughput, samples, f);
        self
    }

    /// Finish the group (reporting happens eagerly; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Entry point: runs benchmarks and prints one line per result.
pub struct Criterion {
    mode: Mode,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` invokes bench executables with `--test`; honor it
        // by running each benchmark once without timing.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            mode: if test_mode { Mode::Test } else { Mode::Measure },
            samples: 15,
        }
    }
}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.samples,
            criterion: self,
            throughput: None,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.samples;
        self.run_one(id, None, samples, f);
        self
    }

    fn run_one<F>(&mut self, id: &str, throughput: Option<Throughput>, samples: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: self.mode,
            samples,
            last: None,
        };
        f(&mut b);
        match (self.mode, b.last) {
            (Mode::Test, _) => println!("test {id} ... ok (smoke)"),
            (Mode::Measure, Some(med)) => {
                let ns = med.as_nanos();
                match throughput {
                    Some(Throughput::Elements(n)) if ns > 0 => {
                        let rate = n as f64 / med.as_secs_f64();
                        println!("{id:<50} {ns:>12} ns/iter  {rate:>14.0} elem/s");
                    }
                    Some(Throughput::Bytes(n)) if ns > 0 => {
                        let rate = n as f64 / med.as_secs_f64() / (1 << 20) as f64;
                        println!("{id:<50} {ns:>12} ns/iter  {rate:>10.1} MiB/s");
                    }
                    _ => println!("{id:<50} {ns:>12} ns/iter"),
                }
            }
            (Mode::Measure, None) => println!("{id:<50}  (no measurement)"),
        }
    }
}

/// Bundle benchmark functions into a group runner, as real criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            mode: Mode::Measure,
            samples: 3,
        };
        let mut ran = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box((0..100u64).sum::<u64>())
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            mode: Mode::Test,
            samples: 3,
        };
        let mut runs = 0u64;
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(1));
        g.bench_function("once", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion {
            mode: Mode::Test,
            samples: 3,
        };
        let mut g = c.benchmark_group("chain");
        g.sample_size(10)
            .bench_function("a", |b| b.iter(|| 1 + 1))
            .bench_function("b", |b| b.iter(|| 2 + 2));
        g.finish();
    }
}
