//! Offline stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the subset of proptest that dtrack's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(...)]` header and `name in strategy` parameters,
//! * range strategies (`0u64..50`, `0.02f64..0.5`, ...), whole-domain
//!   [`any`], constant [`Just`], and tuples of strategies,
//! * combinators: [`Strategy::prop_map`] and the [`prop_oneof!`] union,
//! * [`collection::vec`] and [`collection::hash_set`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//! * [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the standard assert
//!   message; inputs are reproducible (see below) but not minimized.
//! * **Deterministic seeding.** Case `i` of test `t` derives its RNG from
//!   `splitmix64(hash(module_path::t), i)`, so every run of the suite
//!   exercises the same inputs — failures always reproduce. Real proptest
//!   would draw fresh entropy per run; determinism is the better trade
//!   here (the ROADMAP's tier-1 gate must not flake).

use std::ops::Range;

/// Per-invocation configuration (only `cases` is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    //! The deterministic RNG driving case generation.

    /// splitmix64 — statistically strong 64-bit mixer.
    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Deterministic per-case random source.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of the test named `name`
        /// (deterministic across runs and platforms).
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the fully qualified test name.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01B3);
            }
            TestRng {
                state: splitmix64(h ^ splitmix64(case as u64)),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, span)` by widening multiply.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            ((self.next_u64() as u128 * span as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A generator of random values for one `proptest!` parameter.
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Generate one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f` (no shrinking to invert, so
    /// a plain closure suffices).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Always generates a clone of the given value.
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Whole-domain strategy for primitives: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a uniform whole-domain generator (the stand-in's version
/// of proptest's `Arbitrary`; no per-type strategy customization).
pub trait Arbitrary {
    /// Draw one uniform value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform choice among same-valued strategies — the engine behind
/// [`prop_oneof!`] (unweighted; real proptest's `N => strat` weights are
/// not supported).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over the given options (must be non-empty).
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].new_value(rng)
    }
}

/// Box a strategy for [`Union`] storage (a fn, not a method, so
/// `prop_oneof!` can drive type inference across its arms).
#[doc(hidden)]
pub fn box_strategy<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

/// Choose uniformly among strategies generating the same type:
/// `prop_oneof![s1, s2, ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::box_strategy($strat)),+])
    };
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident/$idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A/0, B/1);
    (A/0, B/1, C/2);
    (A/0, B/1, C/2, D/3);
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u64, usize, u32, u16, u8, i64, i32);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Passing a strategy by reference also works (used by `collection`).
impl<S: Strategy> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

pub mod collection {
    //! Strategies producing collections of values.

    use super::{Strategy, TestRng};
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` whose length is uniform in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.new_value(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with target size drawn from `size`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `HashSet` with size uniform in `size` (best effort: if the
    /// element domain is too small to reach the target size, the set is
    /// as large as repeated sampling achieves).
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.new_value(rng);
            let mut out = HashSet::with_capacity(target);
            // Cap attempts so tiny domains can't loop forever.
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(50) + 100 {
                out.insert(self.element.new_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod prelude {
    //! One-stop import for tests: `use proptest::prelude::*;`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert inside a `proptest!` body (panics with the failing expression;
/// no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Define property tests: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($p:pat in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $p = $crate::Strategy::new_value(
                            &($strat), &mut __rng,
                        );
                    )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let mut a = TestRng::for_case("t::x", 0);
        let mut b = TestRng::for_case("t::x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("t::x", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_strategy_respects_bounds() {
        let mut rng = TestRng::for_case("t::bounds", 0);
        for _ in 0..1000 {
            let v = Strategy::new_value(&(5u64..10), &mut rng);
            assert!((5..10).contains(&v));
            let f = Strategy::new_value(&(0.25f64..0.5), &mut rng);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::for_case("t::vec", 0);
        for _ in 0..100 {
            let v = Strategy::new_value(&crate::collection::vec(0u64..50, 3..7), &mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 50));
        }
    }

    #[test]
    fn hash_set_strategy_hits_target_size() {
        let mut rng = TestRng::for_case("t::hs", 0);
        let s = Strategy::new_value(
            &crate::collection::hash_set(0u64..100_000, 10..11),
            &mut rng,
        );
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn combinators_compose() {
        #[derive(Debug, Clone, PartialEq)]
        enum Msg {
            A(u64),
            B(u64, u32),
            C,
        }
        let strat = prop_oneof![
            any::<u64>().prop_map(Msg::A),
            (0u64..100, any::<u32>()).prop_map(|(a, b)| Msg::B(a, b)),
            Just(Msg::C),
        ];
        let mut rng = TestRng::for_case("t::combinators", 0);
        let mut seen = [false; 3];
        for _ in 0..200 {
            match Strategy::new_value(&strat, &mut rng) {
                Msg::A(_) => seen[0] = true,
                Msg::B(a, _) => {
                    assert!(a < 100);
                    seen[1] = true;
                }
                Msg::C => seen[2] = true,
            }
        }
        assert!(seen.iter().all(|&s| s), "all arms exercised: {seen:?}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: params bind, asserts work, config is honored.
        #[test]
        fn macro_end_to_end(
            xs in crate::collection::vec(0u64..10, 1..20),
            mut set in crate::collection::hash_set(0u64..1000, 1..5),
            p in 0.0f64..1.0,
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|&x| x < 10));
            prop_assert!((0.0..1.0).contains(&p));
            set.insert(0);
            prop_assert!(!set.is_empty());
            prop_assert_eq!(xs.len(), xs.len());
            prop_assert_ne!(set.len(), 0);
        }
    }
}
