//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no network access to a
//! Cargo registry, so the workspace vendors the *subset* of the rand 0.8
//! API that the dtrack crates actually use:
//!
//! * [`rngs::SmallRng`] — a small fast PRNG (xoshiro256++, the same
//!   algorithm real `rand` 0.8 uses for `SmallRng` on 64-bit targets),
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool`,
//! * [`SeedableRng`] — `seed_from_u64` (splitmix64 expansion, as upstream),
//! * [`seq::SliceRandom`] — `shuffle` (Fisher–Yates).
//!
//! Everything is deterministic given the seed; nothing reads OS entropy.
//! If the real crate ever becomes available, deleting `vendor/rand` and
//! pointing the workspace dependency at crates.io should be a drop-in
//! swap for every API used here.

use core::ops::Range;

/// splitmix64 step: advances `state` and returns a well-mixed 64-bit value.
///
/// This is the seed-expansion generator recommended by the xoshiro authors
/// and the one upstream `rand` uses inside `seed_from_u64`.
fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The raw generator interface: a source of 64-bit words.
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a generator (the role played
/// by the `Standard` distribution in real rand).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: xoshiro's low bits are its weakest.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the standard
    /// `(x >> 11) * 2^-53` construction).
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Map a random word into `[0, span)` by 128-bit widening multiply
/// (Lemire's method without the rejection step; bias is `O(2^-64)`).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(
                    self.start < self.end,
                    "gen_range called with empty range"
                );
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u64, usize, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing generator trait: convenience samplers over [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` uniformly (the `Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from `range` (half-open).
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Self: Sized,
        Rg: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed via splitmix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{splitmix64_next, RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind real `rand` 0.8's `SmallRng`
    /// on 64-bit platforms. Fast, 256 bits of state, passes BigCrush.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64_next(&mut sm),
                splitmix64_next(&mut sm),
                splitmix64_next(&mut sm),
                splitmix64_next(&mut sm),
            ];
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zero outputs in a row, so `s` is always valid.
            SmallRng { s }
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{bounded_u64, Rng};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut rng = SmallRng::seed_from_u64(8);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0usize..3);
            assert!(y < 3);
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = SmallRng::seed_from_u64(10);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 100_000;
        let heads = (0..n).filter(|_| rng.gen::<bool>()).count();
        let freq = heads as f64 / n as f64;
        assert!((freq - 0.5).abs() < 0.01, "freq {freq}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(12);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        // And it actually moved something (overwhelmingly likely).
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SmallRng::seed_from_u64(13);
        let v: Vec<u32> = Vec::new();
        assert!(v.choose(&mut rng).is_none());
    }
}
