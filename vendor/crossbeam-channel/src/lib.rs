//! Offline stand-in for the
//! [`crossbeam-channel`](https://crates.io/crates/crossbeam-channel) crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the subset of the API that [`dtrack-sim`'s channel runtime]
//! uses — [`unbounded`], [`bounded`], a cloneable [`Sender`], and a
//! [`Receiver`] with `recv`/`try_recv`/`iter` — implemented on top of
//! `std::sync::mpsc`.
//!
//! Two deliberate simplifications, both harmless for dtrack's usage:
//!
//! * [`bounded`] does **not** apply backpressure — it returns an
//!   unbounded queue. dtrack only uses bounded channels for ack/reply
//!   rendezvous where the capacity is never exceeded anyway, so the
//!   semantics (messages arrive, `recv` blocks until they do) coincide.
//! * [`Receiver`] is not `Clone` (std's receiver is single-consumer).
//!   dtrack never clones receivers.
//!
//! [`dtrack-sim`'s channel runtime]: ../dtrack_sim/runtime/index.html

use std::sync::mpsc;

/// Error returned by [`Sender::send`] when the receiving side is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders still exist.
    Empty,
    /// All senders have disconnected and the channel is drained.
    Disconnected,
}

/// The sending half of a channel. Cloneable; all clones feed the same
/// receiver.
pub struct Sender<T> {
    inner: mpsc::Sender<T>,
}

// Derived Clone would require T: Clone; the underlying mpsc sender does not.
impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Send `value`, failing only if the receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
    }
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|_| RecvError)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        self.inner.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })
    }

    /// Blocking iterator over messages; ends when all senders are dropped.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

/// Create a channel with no capacity limit.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (Sender { inner: tx }, Receiver { inner: rx })
}

/// Create a channel with capacity `_cap`.
///
/// Stand-in caveat: capacity is **not** enforced (see crate docs); the
/// returned channel is unbounded and `send` never blocks.
pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
    unbounded()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(5u32).unwrap();
        assert_eq!(rx.recv(), Ok(5));
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1u32).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_recv_reports_empty_then_value() {
        let (tx, rx) = bounded(1);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9u8).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
    }

    #[test]
    fn send_fails_when_receiver_gone() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(3u8), Err(SendError(3)));
    }

    #[test]
    fn works_across_threads() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
        });
        let sum: u64 = rx.iter().sum();
        h.join().unwrap();
        assert_eq!(sum, 4950);
    }
}
