//! Offline stand-in for the
//! [`crossbeam-channel`](https://crates.io/crates/crossbeam-channel) crate.
//!
//! The build environment has no registry access, so this vendored crate
//! provides the subset of the API that [`dtrack-sim`'s channel runtime]
//! uses — [`unbounded`], [`bounded`], a cloneable [`Sender`], and a
//! [`Receiver`] with `recv`/`try_recv`/`iter` — implemented on a
//! `Mutex<VecDeque>` guarded by two condition variables.
//!
//! Since the channel runtime moved its data and control lanes onto the
//! lock-free rings/queues in `dtrack_sim::ring`, this stand-in only
//! carries one-shot rendezvous traffic (quiesce/query acks) — so
//! `recv_timeout` was removed along with the runtime's idle-polling
//! loops (no caller sits in a timed wait anymore; real crossbeam is a
//! strict superset, so a crates.io swap stays valid).
//!
//! Unlike the first-generation stand-in (which wrapped `std::sync::mpsc`
//! and silently ignored capacity), [`bounded`] now enforces **real
//! bounded semantics**: `send` on a full channel blocks until a receiver
//! makes room or the receiver is dropped. `dtrack-sim`'s batched ingest
//! path relies on this backpressure to keep site queues from growing
//! without limit when producers outpace the site threads.
//!
//! One remaining simplification, harmless for dtrack's usage:
//! [`Receiver`] is not `Clone` (dtrack never clones receivers).
//!
//! [`dtrack-sim`'s channel runtime]: ../dtrack_sim/runtime/index.html

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when the receiving side is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when all senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders still exist.
    Empty,
    /// All senders have disconnected and the channel is drained.
    Disconnected,
}

/// Queue state shared by all handles to one channel.
struct Inner<T> {
    queue: VecDeque<T>,
    /// Live `Sender` clones. 0 ⇒ `recv` on an empty queue fails.
    senders: usize,
    /// Whether the `Receiver` is still alive. false ⇒ `send` fails.
    receiver_alive: bool,
}

struct Chan<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when a message is pushed or the last sender leaves.
    not_empty: Condvar,
    /// Signalled when a message is popped or the receiver leaves.
    not_full: Condvar,
    /// `None` ⇒ unbounded; `Some(c)` ⇒ `send` blocks while `len == c`.
    cap: Option<usize>,
}

/// The sending half of a channel. Cloneable; all clones feed the same
/// receiver.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.inner.lock().unwrap().senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.chan.inner.lock().unwrap();
        inner.senders -= 1;
        if inner.senders == 0 {
            // Wake blocked receivers so they can observe disconnection.
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Send `value`, failing only if the receiver has been dropped.
    ///
    /// On a [`bounded`] channel at capacity this blocks until the
    /// receiver pops a message (backpressure) or disconnects.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.chan.inner.lock().unwrap();
        if let Some(cap) = self.chan.cap {
            while inner.receiver_alive && inner.queue.len() >= cap {
                inner = self.chan.not_full.wait(inner).unwrap();
            }
        }
        if !inner.receiver_alive {
            return Err(SendError(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.chan.not_empty.notify_one();
        Ok(())
    }
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.chan.inner.lock().unwrap().receiver_alive = false;
        // Wake blocked senders so they can observe disconnection.
        self.chan.not_full.notify_all();
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives or every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.chan.inner.lock().unwrap();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.chan.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.chan.not_empty.wait(inner).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.chan.inner.lock().unwrap();
        match inner.queue.pop_front() {
            Some(v) => {
                drop(inner);
                self.chan.not_full.notify_one();
                Ok(v)
            }
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.chan.inner.lock().unwrap().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator over messages; ends when all senders are dropped.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { rx: self }
    }
}

/// Iterator returned by [`Receiver::iter`].
pub struct Iter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap,
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

/// Create a channel with no capacity limit; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// Create a channel with capacity `cap`: once `cap` messages are queued,
/// `send` blocks until the receiver pops one (backpressure).
///
/// `cap = 0` is treated as capacity 1 (this stand-in has no rendezvous
/// channels; real crossbeam's zero-capacity channel blocks both sides).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(5u32).unwrap();
        assert_eq!(rx.recv(), Ok(5));
    }

    #[test]
    fn cloned_senders_feed_one_receiver() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1u32).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let got: Vec<u32> = rx.iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn try_recv_reports_empty_then_value() {
        let (tx, rx) = bounded(1);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9u8).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
    }

    #[test]
    fn recv_wakes_on_cross_thread_send() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            tx.send(11u8).unwrap();
        });
        assert_eq!(rx.recv(), Ok(11));
        h.join().unwrap();
    }

    #[test]
    fn send_fails_when_receiver_gone() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(3u8), Err(SendError(3)));
    }

    #[test]
    fn works_across_threads() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
        });
        let sum: u64 = rx.iter().sum();
        h.join().unwrap();
        assert_eq!(sum, 4950);
    }

    #[test]
    fn bounded_send_blocks_at_capacity() {
        let (tx, rx) = bounded(2);
        tx.send(1u32).unwrap();
        tx.send(2).unwrap();
        let blocked = Arc::new(AtomicBool::new(true));
        let b2 = Arc::clone(&blocked);
        let h = std::thread::spawn(move || {
            tx.send(3).unwrap(); // must block until a recv frees a slot
            b2.store(false, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(blocked.load(Ordering::SeqCst), "send did not block at cap");
        assert_eq!(rx.recv(), Ok(1));
        h.join().unwrap();
        assert!(!blocked.load(Ordering::SeqCst));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn bounded_send_unblocks_on_receiver_drop() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let h = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        // The blocked send must return the value as an error, not hang.
        assert_eq!(h.join().unwrap(), Err(SendError(2)));
    }

    #[test]
    fn bounded_keeps_fifo_order_under_contention() {
        let (tx, rx) = bounded(4);
        let h = std::thread::spawn(move || {
            for i in 0..10_000u64 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u64> = rx.iter().collect();
        h.join().unwrap();
        assert_eq!(got, (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let (tx, rx) = bounded(0);
        tx.send(7u8).unwrap(); // would deadlock if capacity were 0
        assert_eq!(rx.recv(), Ok(7));
    }
}
