//! # dtrack — randomized distributed tracking
//!
//! A complete implementation of Huang, Yi, Zhang, *Randomized Algorithms
//! for Tracking Distributed Count, Frequencies, and Ranks* (PODS 2012):
//! continuous tracking protocols in the k-sites-plus-coordinator model
//! that beat the deterministic communication optima by a `√k` factor
//! using unbiased per-site estimators.
//!
//! This umbrella crate re-exports the workspace:
//!
//! * [`core`]: the protocols — randomized count / frequency / rank
//!   tracking, their deterministic baselines, the continuous-sampling
//!   baseline, median boosting, and the frequency-from-rank reduction.
//! * [`sim`]: the model substrate — sites, coordinator, exact message and
//!   word accounting, a deterministic lock-step runner and a concurrent
//!   channel runtime.
//! * [`sketch`]: per-site streaming summaries (Misra–Gries, SpaceSaving,
//!   sticky sampling, Greenwald–Khanna, KLL).
//! * [`workload`]: synthetic stream generators, including the paper's
//!   adversarial lower-bound inputs.
//! * [`bounds`]: empirical demonstrators for the lower bounds.
//!
//! ## Quickstart
//!
//! ```
//! use dtrack::core::count::RandomizedCount;
//! use dtrack::core::TrackingConfig;
//! use dtrack::sim::Runner;
//!
//! // 16 sites, 5% error target.
//! let protocol = RandomizedCount::new(TrackingConfig::new(16, 0.05));
//! let mut runner = Runner::new(&protocol, /* seed */ 7);
//!
//! // Elements arrive at arbitrary sites at arbitrary times…
//! for t in 0..100_000u64 {
//!     runner.feed((t % 16) as usize, &t);
//! }
//!
//! // …and the coordinator can answer at ANY time.
//! let estimate = runner.coord().estimate();
//! assert!((estimate - 100_000.0).abs() <= 0.05 * 100_000.0);
//!
//! // Communication is Θ(√k/ε·logN), far below the deterministic optimum.
//! println!("messages: {}", runner.stats().total_msgs());
//! ```

pub use dtrack_bounds as bounds;
pub use dtrack_core as core;
pub use dtrack_sim as sim;
pub use dtrack_sketch as sketch;
pub use dtrack_workload as workload;
