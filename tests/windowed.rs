//! Integration tests for the sliding-window subsystem
//! (`dtrack_core::window`): accuracy against the exact sliding-window
//! truth (seed-averaged, per the ROADMAP's seed-sensitivity guidance) on
//! the deterministic executors *and* the concurrent channel runtime
//! (whose transport-level fairness mechanisms earn it the same ε bound),
//! bit-exact equivalence across the deterministic executors, behavior on
//! drifting workloads, and an O(k) epoch-seal construction guard.

use dtrack::core::count::RandomizedCount;
use dtrack::core::frequency::RandomizedFrequency;
use dtrack::core::sampling::ContinuousSampling;
use dtrack::core::window::{EpochProtocol, WinCoord, Windowed};
use dtrack::core::TrackingConfig;
use dtrack::sim::exec::{DeliveryPolicy, EventRuntime};
use dtrack::sim::{ExecConfig, Executor, Protocol, Runner, Site};
use dtrack::workload::scenarios;

/// **Acceptance criterion**: `Windowed<RandomizedCount>` answers over
/// the last `W` items are within the configured ε of an exact sliding
/// counter, as a mean over ≥ 20 seeds (single-seed deviations are the
/// protocol's own randomness; the mean isolates the adapter's bias).
#[test]
fn windowed_count_mean_error_within_epsilon_over_20_seeds() {
    let (k, eps, n, w) = (8, 0.1, 30_000u64, 6_144u64);
    let seeds = 20;
    let mut total_err = 0.0;
    for seed in 0..seeds {
        let proto = Windowed::new(RandomizedCount::new(TrackingConfig::new(k, eps)), w);
        let mut r = Runner::new(&proto, seed);
        for t in 0..n {
            r.feed((t % k as u64) as usize, &t);
        }
        // Exact sliding-window count after n ≥ W elements is exactly W.
        total_err += (r.coord().windowed_count() - w as f64).abs() / w as f64;
    }
    let mean_err = total_err / seeds as f64;
    assert!(
        mean_err <= eps,
        "mean windowed count error {mean_err:.4} exceeds eps {eps}"
    );
}

/// The adapter is unbiased mid-stream too, not just at the end: check
/// the mean error at several checkpoints (windows partially filled and
/// fully rolled over).
#[test]
fn windowed_count_tracks_at_checkpoints() {
    let (k, eps, n, w) = (4, 0.15, 20_000u64, 4_096u64);
    let seeds = 20;
    let checkpoints = [2_048u64, 8_192, 20_000];
    let mut errs = [0.0f64; 3];
    for seed in 0..seeds {
        let proto = Windowed::new(RandomizedCount::new(TrackingConfig::new(k, eps)), w);
        let mut r = Runner::new(&proto, 100 + seed);
        let mut ci = 0;
        for t in 0..n {
            r.feed((t % k as u64) as usize, &t);
            if ci < checkpoints.len() && t + 1 == checkpoints[ci] {
                let truth = (t + 1).min(w) as f64;
                errs[ci] += (r.coord().windowed_count() - truth).abs() / truth;
                ci += 1;
            }
        }
    }
    for (cp, e) in checkpoints.iter().zip(errs) {
        let mean = e / seeds as f64;
        assert!(
            mean <= 1.5 * eps,
            "checkpoint {cp}: mean error {mean:.4} vs eps {eps}"
        );
    }
}

/// Drive `Runner` and instant-`EventRuntime` side by side on the same
/// windowed protocol and require identical accounting, space, and
/// windowed answers — the exec layer's equivalence guarantee must
/// survive the window adapter's epoch machinery (seals, acks, rebuilt
/// inner instances).
fn assert_windowed_equivalent<P, Q>(name: &str, proto: &Windowed<P>, n: u64, queries: Q)
where
    P: EpochProtocol,
    P::Site: Site<Item = u64>,
    Q: Fn(&WinCoord<P>) -> Vec<f64>,
{
    let k = proto.k();
    let mut runner = Runner::new(proto, 42);
    let mut event = EventRuntime::new(proto, 42);
    for t in 0..n {
        let (site, item) = ((t % k as u64) as usize, t);
        runner.feed(site, &item);
        event.feed(site, item);
    }
    event.quiesce();
    assert_eq!(runner.stats(), event.stats(), "{name}: CommStats differ");
    for site in 0..k {
        assert_eq!(
            runner.space().peak(site),
            event.space().peak(site),
            "{name}: space peak differs at site {site}"
        );
    }
    let qr = queries(runner.coord());
    let qe = queries(event.coord());
    assert_eq!(
        qr.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        qe.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "{name}: windowed answers differ"
    );
    assert!(
        qr.iter().all(|v| v.is_finite()),
        "{name}: non-finite answer"
    );
}

/// **Acceptance criterion**: bit-identical windowed answers across
/// `Runner` and `EventRuntime` under instant delivery.
#[test]
fn windowed_count_equivalence_across_deterministic_executors() {
    let proto = Windowed::new(RandomizedCount::new(TrackingConfig::new(8, 0.1)), 2_048);
    assert_windowed_equivalent("windowed count", &proto, 12_000, |c| {
        vec![
            c.windowed_count(),
            c.n_approx() as f64,
            c.epoch() as f64,
            c.bucket_count() as f64,
        ]
    });
}

#[test]
fn windowed_sampling_equivalence_across_deterministic_executors() {
    let proto = Windowed::new(ContinuousSampling::new(TrackingConfig::new(8, 0.15)), 2_048);
    assert_windowed_equivalent("windowed sampling", &proto, 12_000, |c| {
        vec![
            c.windowed_count(),
            c.windowed_rank(u64::MAX / 2),
            c.windowed_frequency(3),
        ]
    });
}

/// Same-seed replay under a seeded random-delay policy is bit-exact,
/// and the windowed protocol survives delayed delivery (finite, sane
/// answers after quiesce).
#[test]
fn windowed_random_delay_is_reproducible_and_sane() {
    let proto = Windowed::new(RandomizedCount::new(TrackingConfig::new(4, 0.1)), 2_048);
    let policy = DeliveryPolicy::RandomDelay { min: 1, max: 32 };
    let run = |seed: u64| {
        let mut e = EventRuntime::with_policy(&proto, seed, policy);
        for t in 0..10_000u64 {
            e.feed((t % 4) as usize, t);
        }
        e.quiesce();
        (e.stats().clone(), e.coord().windowed_count())
    };
    let (stats, est) = run(7);
    assert_eq!(run(7), (stats, est), "same seed must replay bit-for-bit");
    assert!(est.is_finite());
    assert!(
        (est - 2_048.0).abs() <= 1_536.0,
        "windowed estimate {est} far from 2048 under random delay"
    );
}

/// On a drifting workload, the windowed heavy hitter is the *current*
/// phase's hot item, and the previous phase's hot item has aged out —
/// the qualitative behavior that separates windowed from whole-stream
/// tracking.
#[test]
fn windowed_frequency_follows_drift() {
    let (k, n, phases, w) = (8, 40_000u64, 4u64, 8_192u64);
    let proto = Windowed::new(RandomizedFrequency::new(TrackingConfig::new(k, 0.05)), w);
    let mut r = Runner::new(&proto, 17);
    for a in scenarios::drifting(k, n, phases, 3) {
        r.feed(a.site, &a.item);
    }
    let current = scenarios::drifting_hot_item(phases - 1);
    let previous = scenarios::drifting_hot_item(phases - 2);
    let hh = r.coord().windowed_heavy_hitters(0.05 * w as f64);
    assert!(
        hh.first().map(|&(item, _)| item) == Some(current),
        "top windowed heavy hitter should be the current phase's hot item {current}, got {hh:?}"
    );
    let f_cur = r.coord().windowed_frequency(current);
    let f_prev = r.coord().windowed_frequency(previous);
    assert!(
        f_cur > 4.0 * f_prev.max(1.0),
        "current hot {f_cur} should dwarf previous hot {f_prev}"
    );
}

/// Resident state stays logarithmic in the stream length: epochs grow
/// unboundedly, buckets do not, and expired history is really gone.
#[test]
fn windowed_buckets_stay_bounded_over_long_streams() {
    let proto = Windowed::new(RandomizedCount::new(TrackingConfig::new(4, 0.2)), 1_024);
    let mut r = Runner::new(&proto, 3);
    let mut max_buckets = 0;
    for t in 0..100_000u64 {
        r.feed((t % 4) as usize, &t);
        if t % 5_000 == 0 {
            max_buckets = max_buckets.max(r.coord().bucket_count());
        }
    }
    assert!(r.coord().epoch() > 2_000, "epoch {}", r.coord().epoch());
    assert!(
        max_buckets <= 28,
        "bucket count {max_buckets} not logarithmic"
    );
    let est = r.coord().windowed_count();
    assert!(
        (est - 1_024.0).abs() < 512.0,
        "after 100k elements the window must still read ≈1024, got {est}"
    );
}

/// On the climbing-value workload the exact sliding-window rank is
/// known in closed form — after `n` arrivals the window holds values
/// `n−W … n−1`, so `rank_W(x) = clamp(x − (n − W), 0, W)` — giving an
/// analytic accuracy check for windowed rank queries (seed-averaged).
#[test]
fn windowed_rank_matches_closed_form_on_climbing_values() {
    let (k, eps, n, w) = (4, 0.1, 20_000u64, 4_096u64);
    let seeds = 20;
    let probes = [n - w + w / 4, n - w / 2, n - w / 10];
    let mut errs = [0.0f64; 3];
    for seed in 0..seeds {
        let proto = Windowed::new(ContinuousSampling::new(TrackingConfig::new(k, eps)), w);
        let mut r = Runner::new(&proto, 300 + seed);
        for a in scenarios::climbing(k, n, seed) {
            r.feed(a.site, &a.item);
        }
        for (e, &x) in errs.iter_mut().zip(&probes) {
            let truth = x.saturating_sub(n - w).min(w) as f64;
            *e += (r.coord().windowed_rank(x) - truth).abs() / w as f64;
        }
    }
    for (&x, e) in probes.iter().zip(errs) {
        let mean = e / seeds as f64;
        assert!(
            mean <= 1.5 * eps,
            "probe {x}: mean windowed rank error {mean:.4} vs eps {eps}"
        );
    }
}

/// **Acceptance criterion**: the *channel* runtime — real threads, real
/// in-flight messages — meets the same ε bound as the deterministic
/// executors, as a mean over ≥ 20 seeds. This is the promotion the
/// transport's fairness mechanisms buy (out-of-band seal/ack/heartbeat
/// delivery plus the per-site credit cap; see `dtrack_sim::runtime`):
/// before them, bucket contents could outrun their recorded heartbeat
/// ranges and this assertion failed by integer factors.
///
/// Release-gated: 20 threaded runs are slow in debug; the release CI
/// step covers it. A single-seed smoke below keeps debug coverage.
#[test]
#[cfg_attr(debug_assertions, ignore = "20 threaded runs; covered by release CI")]
fn windowed_count_channel_mean_error_within_epsilon_over_20_seeds() {
    let (k, eps, n, w) = (8, 0.1, 30_000u64, 6_144u64);
    let seeds = 20;
    let mut total_err = 0.0;
    for seed in 0..seeds {
        let exec = ExecConfig::channel().windowed(w);
        let proto = Windowed::new(RandomizedCount::new(TrackingConfig::new(k, eps)), w);
        let mut ex = exec.mode.build(&proto, seed);
        let batch: Vec<(usize, u64)> = (0..n).map(|t| ((t % k as u64) as usize, t)).collect();
        ex.feed_batch(batch);
        ex.quiesce();
        let est: f64 = ex.query(|c: &WinCoord<RandomizedCount>| c.windowed_count());
        total_err += (est - w as f64).abs() / w as f64;
    }
    let mean_err = total_err / seeds as f64;
    assert!(
        mean_err <= eps,
        "mean windowed channel-runtime count error {mean_err:.4} exceeds eps {eps}"
    );
}

/// Single-seed debug smoke of the same scenario: runs in the fast suite
/// so a channel-runtime regression is caught before release CI.
#[test]
fn windowed_count_channel_single_seed_smoke() {
    let w = 4_096u64;
    let exec = ExecConfig::channel().windowed(w);
    let proto = Windowed::new(RandomizedCount::new(TrackingConfig::new(4, 0.1)), w);
    let mut ex = exec.mode.build(&proto, 1);
    let batch: Vec<(usize, u64)> = (0..20_000u64).map(|t| ((t % 4) as usize, t)).collect();
    ex.feed_batch(batch);
    ex.quiesce();
    let est: f64 = ex.query(|c: &WinCoord<RandomizedCount>| c.windowed_count());
    // Generous single-seed tolerance (the 20-seed mean above is the real
    // bound); still far tighter than the pre-fairness behavior, where
    // pro-rated answers could be off by integer factors.
    assert!(
        (est - w as f64).abs() < 0.5 * w as f64,
        "single-seed channel windowed estimate {est} vs window {w}"
    );
    assert!(ex.stats().total_msgs() > 0);
}

/// Regression guard for the O(k) epoch-seal path: every seal must build
/// exactly one inner site instance per site (k total) and one inner
/// coordinator — never a full `build` of all k sites per site. Counted
/// through a test-only wrapper protocol whose constructor hooks
/// increment atomic counters.
#[test]
fn epoch_seal_builds_exactly_one_site_instance_per_site() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static FULL_BUILDS: AtomicUsize = AtomicUsize::new(0);
    static SITE_BUILDS: AtomicUsize = AtomicUsize::new(0);
    static COORD_BUILDS: AtomicUsize = AtomicUsize::new(0);

    #[derive(Clone, Copy)]
    struct Counting {
        inner: RandomizedCount,
    }
    impl Protocol for Counting {
        type Site = <RandomizedCount as Protocol>::Site;
        type Coord = <RandomizedCount as Protocol>::Coord;
        fn k(&self) -> usize {
            self.inner.k()
        }
        fn build(&self, master_seed: u64) -> (Vec<Self::Site>, Self::Coord) {
            FULL_BUILDS.fetch_add(1, Ordering::SeqCst);
            self.inner.build(master_seed)
        }
        fn build_site(&self, master_seed: u64, me: usize) -> Self::Site {
            SITE_BUILDS.fetch_add(1, Ordering::SeqCst);
            self.inner.build_site(master_seed, me)
        }
        fn build_coord(&self, master_seed: u64) -> Self::Coord {
            COORD_BUILDS.fetch_add(1, Ordering::SeqCst);
            self.inner.build_coord(master_seed)
        }
    }
    impl EpochProtocol for Counting {
        type Digest = <RandomizedCount as EpochProtocol>::Digest;
        fn digest(coord: &Self::Coord) -> Self::Digest {
            <RandomizedCount as EpochProtocol>::digest(coord)
        }
        fn merge(a: Self::Digest, b: &Self::Digest) -> Self::Digest {
            <RandomizedCount as EpochProtocol>::merge(a, b)
        }
    }

    let k = 4usize;
    let proto = Windowed::new(
        Counting {
            inner: RandomizedCount::new(TrackingConfig::new(k, 0.1)),
        },
        1_024,
    );
    let mut r = Runner::new(&proto, 5);
    for t in 0..20_000u64 {
        r.feed((t % k as u64) as usize, &t);
    }
    let seals = r.coord().epoch() as usize;
    assert!(seals > 100, "expected many seals, got {seals}");
    // The windowed adapter must never perform a full k-site build of the
    // inner protocol — not even for the initial epoch.
    assert_eq!(FULL_BUILDS.load(Ordering::SeqCst), 0, "full builds");
    // Initial epoch: one site instance per site, one coordinator. Every
    // seal: exactly one site instance per site (k total, O(k) — not the
    // old O(k²) discard pattern) and one fresh inner coordinator.
    assert_eq!(
        SITE_BUILDS.load(Ordering::SeqCst),
        k * (seals + 1),
        "site constructions across {seals} seals"
    );
    assert_eq!(
        COORD_BUILDS.load(Ordering::SeqCst),
        seals + 1,
        "coordinator constructions across {seals} seals"
    );
}

/// The windowed-bias workload, mirroring `dtrack-bench`'s
/// `windowed_bias_item` (the umbrella test crate cannot depend on the
/// bench crate): hot item 0 on even positions keeps `p` falling into
/// the sampling regime; odd positions cycle `domain` rare items, so
/// each occurs exactly `w / (2 · domain)` times in any aligned window —
/// the counter-miss regime where the eq. (2)/eq. (4) difference peaks.
fn bias_item(t: u64, domain: u64) -> u64 {
    if t.is_multiple_of(2) {
        0
    } else {
        1 + (t / 2) % domain
    }
}

/// Mean signed rare-item windowed-frequency error over `seeds` seeds
/// for a windowed frequency protocol built by `proto`.
fn mean_signed_rare_err<P>(
    proto: &Windowed<P>,
    k: usize,
    n: u64,
    w: u64,
    domain: u64,
    seeds: u64,
) -> f64
where
    P: EpochProtocol,
    P::Site: Site<Item = u64>,
    P::Digest: dtrack::core::window::FrequencyDigest,
{
    let truth = w as f64 / (2 * domain) as f64;
    let mut signed = 0.0;
    for seed in 0..seeds {
        let mut r = Runner::new(proto, seed);
        for t in 0..n {
            r.feed((t % k as u64) as usize, &bias_item(t, domain));
        }
        for j in 1..=domain {
            signed += r.coord().windowed_frequency(j) - truth;
        }
    }
    signed / (seeds * domain) as f64
}

/// **Acceptance criterion**: with epoch digests carrying the per-item
/// `−d/p` correction terms, the mean *signed* rare-item
/// `windowed_frequency` error over 20 seeds is statistically
/// indistinguishable from 0 — within the window machinery's own
/// heartbeat slack (granularity/2 = 128 elements, pro-rated by the
/// item's rate 1/32 → ≤ 4 elements/item) plus ~3 standard errors
/// (empirical SE ≈ 2 over 20-seed sets). Signed errors cancel unbiased
/// noise, so only systematic digest bias could break this.
///
/// Release-gated: 20 windowed runs are slow in debug; release CI runs
/// it (the companion positive-bias test below shares the gate).
#[test]
#[cfg_attr(debug_assertions, ignore = "20 windowed runs; covered by release CI")]
fn windowed_frequency_mean_signed_rare_item_error_centers_at_zero() {
    let (k, eps, n, w, domain, seeds) = (8usize, 0.1f64, 40_000u64, 8_192u64, 16u64, 20u64);
    let proto = Windowed::new(RandomizedFrequency::new(TrackingConfig::new(k, eps)), w);
    let bias = mean_signed_rare_err(&proto, k, n, w, domain, seeds);
    assert!(
        bias.abs() <= 12.0,
        "corrected digests: mean signed rare-item error {bias:+.2} not centered at 0 \
         (slack bound 4 + 3·SE ≈ 12; truth {} per item, eps·W = {})",
        w / (2 * domain),
        eps * w as f64
    );
}

/// Companion to the test above: the *uncorrected* ablation digests
/// (tracked table only, every correction term dropped) must show the positive
/// rare-item bias the correction removes, proving this harness can
/// detect the bug it guards against. Empirically the bias sits at
/// ≈ +56..+60 elements/item here (SE ≈ 1.5); asserting ≥ 30 leaves a
/// wide margin while staying 2.5× above the corrected arm's ceiling.
#[test]
#[cfg_attr(debug_assertions, ignore = "20 windowed runs; covered by release CI")]
fn uncorrected_digests_show_positive_rare_item_bias() {
    let (k, eps, n, w, domain, seeds) = (8usize, 0.1f64, 40_000u64, 8_192u64, 16u64, 20u64);
    let proto = Windowed::new(
        RandomizedFrequency::new(TrackingConfig::new(k, eps)).ablation_uncorrected_digests(),
        w,
    );
    let bias = mean_signed_rare_err(&proto, k, n, w, domain, seeds);
    assert!(
        bias >= 30.0,
        "uncorrected digests: expected measurable positive rare-item bias, got {bias:+.2}"
    );
}

/// Timed schedules drive every executor through `Executor::feed_at`:
/// the event runtime interprets ticks virtually, and the windowed
/// answers still come out right on a bursty timeline.
#[test]
fn windowed_timed_schedule_drives_the_event_runtime() {
    let (k, n, w) = (4, 20_000u64, 4_096u64);
    let proto = Windowed::new(RandomizedCount::new(TrackingConfig::new(k, 0.1)), w);
    let mut ex = EventRuntime::with_policy(&proto, 9, DeliveryPolicy::FixedLatency(3));
    let schedule = scenarios::bursty_drifting(k, n, 2, 64, 16, 5);
    for a in schedule {
        Executor::<Windowed<RandomizedCount>>::feed_at(&mut ex, a.at, a.site, a.item);
    }
    ex.quiesce();
    let est = ex.coord().windowed_count();
    assert!(
        (est - w as f64).abs() < 0.35 * w as f64,
        "bursty windowed estimate {est} vs window {w}"
    );
}
