//! The fault-injection property suite — the correctness story for
//! `dtrack_sim::exec::faults` (ISSUE 6 / ROADMAP item 4).
//!
//! Three layers of guarantees, cheapest first:
//!
//! 1. **Smoke** (`smoke_*`, debug-fast): every `+suffix` singly, parsed
//!    from its scenario string, runs to quiescence and keeps the
//!    deterministic count baseline's *unconditional* invariant
//!    `n̂ ≤ n ≤ (1+ε)n̂`. CI runs these before the release suite so a
//!    broken fault combination fails in seconds.
//! 2. **Bit-identity**: a fault-free plan is byte-for-byte the
//!    pre-fault runtime; `+dup` — whose duplicates every endpoint must
//!    discard — changes *nothing* observable (CommStats, space,
//!    coordinator answers compared via `f64::to_bits`) on any of the
//!    seven Table-1 protocols or `Windowed<P>`; only `FaultStats` sees
//!    the duplicates. This is "idempotence is a tested property":
//!    idempotence lives in the transport dedup and the protocols need
//!    none of their own.
//! 3. **ε bounds** (release-gated, ≥ 20 seeds): all seven protocols
//!    plus `Windowed<P>` meet the mean-error-≤-ε acceptance bound under
//!    `+loss:0.05+dup:0.05+churn:0.1`, and under each fault alone.
//!
//! Plus the ingest-side loop: `AdaptiveSites` driven by the event
//! runtime's observed per-link latency routes away from a `+straggle`
//! link (the mpudp explore/exploit pattern, end to end).

use dtrack::core::count::{DeterministicCount, RandomizedCount};
use dtrack::core::frequency::{DeterministicFrequency, RandomizedFrequency};
use dtrack::core::rank::{DeterministicRank, RandomizedRank};
use dtrack::core::sampling::ContinuousSampling;
use dtrack::core::window::{WinCoord, Windowed};
use dtrack::core::TrackingConfig;
use dtrack::sim::exec::{DeliveryPolicy, EventRuntime};
use dtrack::sim::{ExecConfig, Executor, FaultPlan, Protocol, Site};
use dtrack::workload::items::DistinctSeq;
use dtrack::workload::{AdaptiveSites, SiteAssign, UniformSites, Workload, ZipfItems};
use dtrack_bench::measure::{
    count_run, frequency_run, frequency_single_probe_error, rank_run, CountAlgo, FreqAlgo, RankAlgo,
};

const K: usize = 8;

fn cfg(eps: f64) -> TrackingConfig {
    TrackingConfig::new(K, eps)
}

fn zipf_arrivals(n: u64, seed: u64) -> Vec<(usize, u64)> {
    Workload::new(ZipfItems::new(500, 1.2), UniformSites::new(K), n, seed)
        .map(|a| (a.site, a.item))
        .collect()
}

fn distinct_arrivals(n: u64, seed: u64) -> Vec<(usize, u64)> {
    Workload::new(DistinctSeq::new(seed), UniformSites::new(K), n, seed)
        .map(|a| (a.site, a.item))
        .collect()
}

/// Parse `spec`, run `DeterministicCount` under it, and require the
/// baseline's unconditional guarantee after quiesce — the sharpest
/// cheap check that a fault model loses or double-delivers nothing.
fn smoke_deterministic_count(spec: &str) {
    let exec: ExecConfig = spec.parse().unwrap_or_else(|e| panic!("{e}"));
    let eps = 0.1;
    let n = 4_000u64;
    let proto = DeterministicCount::new(cfg(eps));
    let mut ex = exec.build(&proto, 7);
    for t in 0..n {
        // feed_at spreads arrivals out so churn outages actually hit.
        ex.feed_at(t * 8, (t % K as u64) as usize, t);
    }
    ex.quiesce();
    let est = ex.query(|c: &dtrack::core::count::DetCountCoord| c.estimate());
    assert!(est <= n as f64 + 1e-9, "{spec}: n̂ {est} > n {n}");
    assert!(
        n as f64 <= est * (1.0 + eps) + 1e-9,
        "{spec}: n {n} > (1+ε)n̂ = {}",
        est * (1.0 + eps)
    );
    // And a randomized protocol survives the same scenario sanely.
    let proto = RandomizedCount::new(cfg(eps));
    let mut ex = exec.build(&proto, 7);
    for t in 0..n {
        ex.feed_at(t * 8, (t % K as u64) as usize, t);
    }
    ex.quiesce();
    let est = ex.query(|c: &dtrack::core::count::RandCountCoord| c.estimate());
    assert!(
        est.is_finite() && (est - n as f64).abs() <= 0.5 * n as f64,
        "{spec}: randomized estimate {est}"
    );
}

#[test]
fn smoke_loss() {
    smoke_deterministic_count("event+loss:0.2");
}

#[test]
fn smoke_dup() {
    smoke_deterministic_count("event+dup:0.5");
}

#[test]
fn smoke_churn() {
    smoke_deterministic_count("event+churn:0.2");
}

#[test]
fn smoke_straggle() {
    smoke_deterministic_count("event+straggle:32");
}

#[test]
fn smoke_combined() {
    smoke_deterministic_count("event:random:0:8+loss:0.05+dup:0.05+churn+straggle:8");
}

#[test]
fn smoke_windowed_faulty() {
    // The window adapter's seal/ack handshake rides the same faulty
    // links; smoke it with every fault on at once.
    let exec: ExecConfig = "event+loss:0.1+dup:0.2+churn:0.15+straggle:4"
        .parse()
        .unwrap();
    let (n, w) = (6_000u64, 2_048u64);
    let proto = Windowed::new(RandomizedCount::new(cfg(0.1)), w);
    let mut ex = exec.mode.build_faulty(exec.faults, &proto, 3);
    for t in 0..n {
        ex.feed_at(t * 8, (t % K as u64) as usize, t);
    }
    ex.quiesce();
    let est = ex.query(|c: &WinCoord<RandomizedCount>| c.windowed_count());
    assert!(
        est.is_finite() && (est - w as f64).abs() <= 0.75 * w as f64,
        "windowed estimate {est} vs w {w}"
    );
}

/// `EventRuntime::with_faults` with an empty plan takes the exact
/// pre-fault code paths: bit-identical to `with_policy` on a real
/// protocol (the regression pin for the fault-RNG stream split — fault
/// streams must never touch the delivery-delay stream).
#[test]
fn empty_fault_plan_is_bit_identical_to_with_policy() {
    let proto = RandomizedFrequency::new(cfg(0.1));
    let arrivals = zipf_arrivals(6_000, 7);
    let policy = DeliveryPolicy::RandomDelay { min: 1, max: 32 };
    let run_plain = {
        let mut ex = EventRuntime::with_policy(&proto, 42, policy);
        for &(s, i) in &arrivals {
            ex.feed(s, i);
        }
        ex.quiesce();
        let answers: Vec<u64> = (0..10)
            .map(|j| ex.coord().estimate_frequency(j).to_bits())
            .collect();
        (ex.stats().clone(), ex.space().max_peak(), answers)
    };
    let run_faulty = {
        let mut ex = EventRuntime::with_faults(&proto, 42, policy, FaultPlan::none());
        assert!(
            ex.fault_stats().is_none(),
            "empty plan must not build a layer"
        );
        for &(s, i) in &arrivals {
            ex.feed(s, i);
        }
        ex.quiesce();
        let answers: Vec<u64> = (0..10)
            .map(|j| ex.coord().estimate_frequency(j).to_bits())
            .collect();
        (ex.stats().clone(), ex.space().max_peak(), answers)
    };
    assert_eq!(run_plain, run_faulty);
}

/// Run `proto` under `plan`, return every observable the paper's
/// accounting sees: CommStats, per-site space peaks, and query answers
/// as exact bit patterns.
fn observables<P, Q>(
    proto: &P,
    arrivals: &[(usize, u64)],
    policy: DeliveryPolicy,
    plan: FaultPlan,
    queries: Q,
) -> (dtrack::sim::CommStats, Vec<u64>, Vec<u64>)
where
    P: Protocol,
    P::Site: Site<Item = u64>,
    Q: Fn(&P::Coord) -> Vec<f64>,
{
    let mut ex = EventRuntime::with_faults(proto, 42, policy, plan);
    for &(site, item) in arrivals {
        ex.feed(site, item);
    }
    ex.quiesce();
    let space: Vec<u64> = (0..K).map(|s| ex.space().peak(s)).collect();
    let answers: Vec<u64> = queries(ex.coord()).iter().map(|v| v.to_bits()).collect();
    (ex.stats().clone(), space, answers)
}

/// The headline idempotence property: turning `+dup` on — alone or on
/// top of other faults — leaves every protocol observable
/// **bit-identical**, because the endpoint's sequence-number dedup
/// discards every duplicate before the protocol sees it. Checked for
/// all seven Table-1 protocols and `Windowed<P>`.
///
/// Pairings are chosen so the only difference between the two runs is
/// `+dup` itself: under order-preserving policies (`Instant`,
/// `FixedLatency`) a dup-only layer is compared against no layer at
/// all; under the reordering `RandomDelay` policy the base plan is
/// already active (the fault layer's hold-back buffer upgrades links
/// to FIFO, so layer-vs-no-layer is not an apples-to-apples pair
/// there).
macro_rules! dup_identical_case {
    ($test:ident, $proto:expr, $arrivals:expr, $queries:expr) => {
        #[test]
        fn $test() {
            let proto = $proto;
            let arrivals = $arrivals;
            let queries = $queries;
            let reorder = DeliveryPolicy::RandomDelay { min: 0, max: 8 };
            let cases = [
                (DeliveryPolicy::Instant, FaultPlan::none()),
                (DeliveryPolicy::FixedLatency(3), FaultPlan::none()),
                (reorder, FaultPlan::none().with_straggle(2)),
                (reorder, FaultPlan::none().with_straggle(2).with_loss(0.1)),
            ];
            for (policy, base) in cases {
                let clean = observables(&proto, &arrivals, policy, base, &queries);
                let dup = observables(&proto, &arrivals, policy, base.with_dup(0.3), &queries);
                assert_eq!(clean, dup, "duplicates changed an observable");
            }
            // The duplicates really were injected and dropped.
            let mut ex =
                EventRuntime::with_faults(&proto, 42, reorder, FaultPlan::none().with_dup(0.3));
            for &(site, item) in &arrivals {
                ex.feed(site, item);
            }
            ex.quiesce();
            let fs = ex.fault_stats().unwrap();
            assert!(fs.duplicates > 0, "no duplicates injected: {fs:?}");
            assert_eq!(fs.duplicates, fs.dup_dropped, "{fs:?}");
        }
    };
}

dup_identical_case!(
    dup_bit_identical_randomized_count,
    RandomizedCount::new(cfg(0.1)),
    zipf_arrivals(6_000, 7),
    |c: &dtrack::core::count::RandCountCoord| vec![c.estimate()]
);

dup_identical_case!(
    dup_bit_identical_deterministic_count,
    DeterministicCount::new(cfg(0.1)),
    zipf_arrivals(6_000, 7),
    |c: &dtrack::core::count::DetCountCoord| vec![c.estimate()]
);

dup_identical_case!(
    dup_bit_identical_randomized_frequency,
    RandomizedFrequency::new(cfg(0.1)),
    zipf_arrivals(6_000, 7),
    |c: &dtrack::core::frequency::RandFreqCoord| {
        (0..10).map(|j| c.estimate_frequency(j)).collect()
    }
);

dup_identical_case!(
    dup_bit_identical_deterministic_frequency,
    DeterministicFrequency::new(cfg(0.1)),
    zipf_arrivals(6_000, 7),
    |c: &dtrack::core::frequency::DetFreqCoord| {
        (0..10).map(|j| c.estimate_frequency(j)).collect()
    }
);

dup_identical_case!(
    dup_bit_identical_randomized_rank,
    RandomizedRank::new(cfg(0.1)),
    distinct_arrivals(6_000, 7),
    |c: &dtrack::core::rank::RandRankCoord| {
        [u64::MAX / 4, u64::MAX / 2, u64::MAX / 4 * 3]
            .iter()
            .map(|&x| c.estimate_rank(x))
            .collect()
    }
);

dup_identical_case!(
    dup_bit_identical_deterministic_rank,
    DeterministicRank::new(cfg(0.1)),
    distinct_arrivals(6_000, 7),
    |c: &dtrack::core::rank::DetRankCoord| {
        [u64::MAX / 4, u64::MAX / 2, u64::MAX / 4 * 3]
            .iter()
            .map(|&x| c.estimate_rank(x))
            .collect()
    }
);

dup_identical_case!(
    dup_bit_identical_continuous_sampling,
    ContinuousSampling::new(cfg(0.1)),
    distinct_arrivals(6_000, 7),
    |c: &dtrack::core::sampling::SamplingCoord| {
        vec![
            c.estimate_count(),
            c.estimate_frequency(3),
            c.estimate_rank(u64::MAX / 2),
        ]
    }
);

dup_identical_case!(
    dup_bit_identical_windowed,
    Windowed::new(RandomizedCount::new(cfg(0.1)), 2_048),
    zipf_arrivals(6_000, 7),
    |c: &WinCoord<RandomizedCount>| vec![c.windowed_count()]
);

/// Every faulty run is bit-for-bit reproducible from its master seed,
/// and a different seed produces a genuinely different fault schedule.
#[test]
fn faulty_runs_replay_exactly_from_the_seed() {
    let proto = RandomizedCount::new(cfg(0.1));
    let arrivals = zipf_arrivals(4_000, 3);
    let plan = FaultPlan::none()
        .with_loss(0.1)
        .with_dup(0.1)
        .with_churn(0.2)
        .with_straggle(8);
    let run = |seed: u64| {
        let mut ex = EventRuntime::with_faults(&proto, seed, DeliveryPolicy::Instant, plan);
        for (t, &(site, item)) in arrivals.iter().enumerate() {
            ex.feed_at(t as u64 * 8, site, item);
        }
        ex.quiesce();
        (
            ex.stats().clone(),
            ex.fault_stats().unwrap().clone(),
            ex.coord().estimate().to_bits(),
            ex.now(),
        )
    };
    assert_eq!(run(5), run(5), "same seed must replay bit-for-bit");
    assert_ne!(
        run(5).1,
        run(6).1,
        "different seeds must draw different fault schedules"
    );
}

/// The ingest loop closed end to end: `AdaptiveSites` fed by the event
/// runtime's observed up-link latencies routes away from the
/// `+straggle` site within a few hundred elements.
#[test]
fn adaptive_assignment_routes_around_a_straggler_link() {
    let proto = RandomizedCount::new(cfg(0.1));
    let plan = FaultPlan::none().with_straggle(64);
    let mut ex = EventRuntime::with_faults(&proto, 11, DeliveryPolicy::FixedLatency(2), plan);
    let mut assign = AdaptiveSites::new(K);
    let mut rng = dtrack::sim::rng::rng_from_seed(11);
    let n = 12_000u64;
    let (warmup, mut straggler_hits, mut measured) = (2_000u64, 0u64, 0u64);
    for t in 0..n {
        let site = assign.next_site(&mut rng);
        if t >= warmup {
            measured += 1;
            if site == 0 {
                straggler_hits += 1;
            }
        }
        ex.feed(site, t);
        // Feedback: the policy sees each link's observed mean latency.
        for s in 0..K {
            if let Some(lat) = ex.mean_up_latency(s) {
                assign.observe(s, lat);
            }
        }
    }
    ex.quiesce();
    let frac = straggler_hits as f64 / measured as f64;
    // Uniform would give 1/k = 12.5%; exploit weight 1/(1+66) vs 1/(1+2)
    // puts ≈ 0.6% of exploit mass there, plus explore/k ≈ 1.25%.
    assert!(
        frac < 0.06,
        "straggler still receives {:.1}% of elements",
        frac * 100.0
    );
    assert!(straggler_hits > 0, "exploration must keep probing site 0");
    assert_eq!(ex.stats().elements, n);
}

// --- release-gated ε-bound suite (the acceptance criterion) ---

/// Mean error over ≥ 20 seeds of `metric` must be ≤ `eps`.
fn assert_mean_error_le_eps<F: Fn(u64) -> f64>(name: &str, eps: f64, seeds: u64, metric: F) {
    let mean = (0..seeds).map(&metric).sum::<f64>() / seeds as f64;
    assert!(
        mean <= eps,
        "{name}: mean error {mean:.4} over {seeds} seeds exceeds eps {eps}"
    );
}

/// All seven Table-1 protocols meet the mean-error-≤-ε bound under the
/// acceptance scenario `+loss:0.05+dup:0.05+churn:0.1` (and the per-
/// protocol error metric each run function scores — count relative
/// error, frequency per-query error on the hottest item per Theorem
/// 3.1, rank max-over-deciles error).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "20-seed release-gated acceptance suite; covered by release CI"
)]
fn all_protocols_meet_epsilon_under_the_acceptance_fault_mix() {
    let exec: ExecConfig = "event+loss:0.05+dup:0.05+churn:0.1".parse().unwrap();
    let (eps, seeds, n, rank_n) = (0.1, 20, 30_000u64, 8_000u64);
    for algo in [
        CountAlgo::Deterministic,
        CountAlgo::Randomized,
        CountAlgo::Sampling,
    ] {
        assert_mean_error_le_eps(&format!("count/{algo:?}"), eps, seeds, |seed| {
            count_run(exec, algo, K, eps, n, seed).1
        });
    }
    for algo in [FreqAlgo::Deterministic, FreqAlgo::Randomized] {
        assert_mean_error_le_eps(&format!("frequency/{algo:?}"), eps, seeds, |seed| {
            frequency_single_probe_error(exec, algo, K, eps, n, seed)
        });
    }
    for algo in [RankAlgo::Deterministic, RankAlgo::Randomized] {
        assert_mean_error_le_eps(&format!("rank/{algo:?}"), eps, seeds, |seed| {
            rank_run(exec, algo, K, eps, rank_n, seed).1
        });
    }
}

/// `Windowed<P>` meets the same bound under the acceptance mix — the
/// epoch seal/ack machinery re-synchronizes churned sites.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "20-seed release-gated acceptance suite; covered by release CI"
)]
fn windowed_meets_epsilon_under_the_acceptance_fault_mix() {
    let exec: ExecConfig = "event+loss:0.05+dup:0.05+churn:0.1".parse().unwrap();
    let (eps, seeds, n, w) = (0.1, 20, 30_000u64, 6_144u64);
    assert_mean_error_le_eps("windowed count", eps, seeds, |seed| {
        count_run(exec.windowed(w), CountAlgo::Randomized, K, eps, n, seed).1
    });
    assert_mean_error_le_eps("windowed frequency", eps, seeds, |seed| {
        frequency_run(exec.windowed(w), FreqAlgo::Randomized, K, eps, n, seed).1
    });
}

/// Each fault alone also stays within ε (a fault combination could mask
/// a single fault's bias by accident; singles rule that out).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "20-seed release-gated acceptance suite; covered by release CI"
)]
fn each_single_fault_meets_epsilon() {
    let (eps, seeds, n) = (0.1, 20, 30_000u64);
    for spec in [
        "event+loss:0.05",
        "event+dup:0.05",
        "event+churn:0.1",
        "event+straggle:32",
    ] {
        let exec: ExecConfig = spec.parse().unwrap();
        assert_mean_error_le_eps(&format!("{spec} count"), eps, seeds, |seed| {
            count_run(exec, CountAlgo::Randomized, K, eps, n, seed).1
        });
        assert_mean_error_le_eps(&format!("{spec} frequency"), eps, seeds, |seed| {
            frequency_single_probe_error(exec, FreqAlgo::Randomized, K, eps, n, seed)
        });
    }
}
