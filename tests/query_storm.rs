//! Live-query battery for the lock-free snapshot read path.
//!
//! The `Executor::query_handle` contract under test (see
//! `dtrack::sim::snapshot`):
//!
//! * **Prefix consistency** — every answer comes from a whole coordinator
//!   state at a publish boundary, never a torn intermediate, so count
//!   snapshots are monotone non-decreasing for a monotone estimator
//!   (`DeterministicCount`: per-site last-reported counters only grow,
//!   and per-site FIFO delivery keeps each monotone at the coordinator).
//! * **Bounded staleness** — an answer lags ingest by at most one
//!   snapshot epoch; with ingest *paused* (after `quiesce`) a handle
//!   answer is bit-identical to the stop-the-world `query`, and with
//!   ingest *racing* every answer is bounded between the truths at the
//!   race's start and end.
//!
//! The seeded staleness tests and the 8-reader × 1M-query storm are
//! sized for `--release` and ignored in debug builds (CI runs them in
//! the release lane next to `ingest_stress`); the `smoke_` tests stay
//! fast enough for the debug fault-matrix smoke lane.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use dtrack::core::count::{DetCountCoord, DeterministicCount, RandomizedCount};
use dtrack::core::TrackingConfig;
use dtrack::sim::runtime::ChannelRuntime;
use dtrack::sim::{ExecConfig, Executor, QueryHandle};

const K: usize = 8;
const EPS: f64 = 0.05;

fn det_count() -> DeterministicCount {
    DeterministicCount::new(TrackingConfig::new(K, EPS))
}

/// Feed `n` elements round-robin through the batched fast path.
fn feed_round_robin(ex: &mut impl Executor<DeterministicCount>, n: u64, offset: u64) {
    let batch: Vec<(usize, u64)> = (0..n)
        .map(|t| (((offset + t) % K as u64) as usize, offset + t))
        .collect();
    ex.feed_batch(batch);
}

/// Debug-friendly smoke: a handle created mid-stream is fresh at
/// creation, live reads are sane while ingest continues, and the
/// fresh-after-quiesce answer is bit-identical to the stop-the-world
/// query. Runs on every executor the fault-matrix smoke lane builds.
#[test]
fn smoke_handle_reads_match_quiesced_query() {
    for spec in ["lockstep", "event:instant", "event:fixed:4", "channel"] {
        let cfg: ExecConfig = spec.parse().unwrap();
        let mut ex = cfg.build(&det_count(), 11);
        feed_round_robin(&mut ex, 5_000, 0);
        let handle = ex.query_handle();
        ex.quiesce();
        let truth = ex.query(|c: &DetCountCoord| c.estimate());
        assert_eq!(
            handle.read(|s| s.state.estimate()),
            truth,
            "{spec}: post-quiesce handle read differs from query"
        );
        // A clone (fresh hazard slot) sees the same snapshot.
        assert_eq!(handle.clone().read(|s| s.state.estimate()), truth, "{spec}");
        // Feed more: the live read advances without any quiesce.
        let before = handle.read(|s| (s.epoch, s.state.estimate()));
        feed_round_robin(&mut ex, 5_000, 5_000);
        ex.quiesce();
        let after = handle.read(|s| (s.epoch, s.state.estimate()));
        assert!(after.0 > before.0, "{spec}: epoch did not advance");
        assert!(after.1 > before.1, "{spec}: estimate did not advance");
        assert_eq!(
            after.1,
            ex.query(|c: &DetCountCoord| c.estimate()),
            "{spec}"
        );
    }
}

/// Satellite: with ingest **paused at a known prefix**, every handle
/// answer equals the quiesced stop-the-world answer — bit-identical,
/// stable across repeated reads and across handle clones, at two
/// different prefixes, over 20 seeds.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "20-seed channel-runtime staleness sweep; covered by release CI"
)]
fn paused_ingest_answers_equal_quiesced_truth_over_seeds() {
    for seed in 0..20u64 {
        let mut ex = ExecConfig::channel().build(&det_count(), seed);
        let handle = ex.query_handle();
        for (phase, n) in [(0u64, 40_000u64), (1, 60_000)] {
            let offset = phase * 40_000;
            feed_round_robin(&mut ex, n, offset);
            ex.quiesce();
            let truth = ex.query(|c: &DetCountCoord| c.estimate());
            for _ in 0..100 {
                assert_eq!(
                    handle.read(|s| s.state.estimate()),
                    truth,
                    "seed {seed} phase {phase}: paused handle drifted from truth"
                );
            }
            let clone = handle.clone();
            assert_eq!(clone.read(|s| s.state.estimate()), truth, "seed {seed}");
            // Paused ingest ⇒ the epoch is stable too: two consecutive
            // reads observe the same snapshot.
            assert_eq!(handle.epoch(), handle.epoch(), "seed {seed}");
        }
    }
}

/// Satellite: with ingest **racing**, every answer is bounded between
/// the truth at the race's start (T0) and at its end (T1), and epochs
/// are monotone per reader — 20 seeds. `DeterministicCount`'s estimate
/// is monotone along the coordinator's apply order, so prefix
/// consistency makes [T0, T1] exact bounds; a torn or non-prefix
/// snapshot could land outside them.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "20-seed racing staleness sweep; covered by release CI"
)]
fn racing_answers_bounded_between_prefix_truths() {
    for seed in 0..20u64 {
        let mut ex = ExecConfig::channel().build(&det_count(), seed);
        let handle = ex.query_handle();
        feed_round_robin(&mut ex, 50_000, 0);
        ex.quiesce();
        let t0 = ex.query(|c: &DetCountCoord| c.estimate());

        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let h = handle.clone();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut last_est = 0.0f64;
                let mut samples = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (epoch, est) = h.read(|s| (s.epoch, s.state.estimate()));
                    assert!(epoch >= last_epoch, "epoch went backwards");
                    assert!(est >= last_est, "count snapshot decreased");
                    (last_epoch, last_est) = (epoch, est);
                    samples += 1;
                }
                (samples, last_est)
            })
        };

        feed_round_robin(&mut ex, 50_000, 50_000);
        ex.quiesce();
        let t1 = ex.query(|c: &DetCountCoord| c.estimate());
        stop.store(true, Ordering::Relaxed);
        let (samples, racing_max) = reader.join().unwrap();

        assert!(samples > 0, "seed {seed}: reader never sampled");
        // Monotonicity was asserted per sample; the largest racing answer
        // must also respect the end-of-race truth, and every answer ≥ the
        // reader's first-possible truth is implied by monotone ≥ 0. The
        // start truth bounds the *post-T0* samples: since the reader
        // started after quiesce at T0, its first sample already sees ≥ T0.
        assert!(
            racing_max <= t1,
            "seed {seed}: racing answer {racing_max} exceeds end truth {t1}"
        );
        assert!(
            racing_max >= t0,
            "seed {seed}: final racing answer {racing_max} below start truth {t0}"
        );
    }
}

/// Satellite: the storm — 8 reader threads × 1M queries each racing
/// `feed_batch` on the channel runtime. No panic, monotone
/// non-decreasing count snapshots per reader, and exact final answers
/// after quiesce.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "8-thread × 1M-query storm; covered by release CI"
)]
fn reader_storm_races_batched_ingest() {
    const READERS: usize = 8;
    const QUERIES_PER_READER: u64 = 1_000_000;
    const N: u64 = 1_000_000;

    let mut ex = ExecConfig::channel().build(&det_count(), 99);
    let handle = ex.query_handle();
    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let h: QueryHandle<DetCountCoord> = handle.clone();
            thread::spawn(move || {
                let (mut last_epoch, mut last_est) = (0u64, 0.0f64);
                for _ in 0..QUERIES_PER_READER {
                    let (epoch, est) = h.read(|s| (s.epoch, s.state.estimate()));
                    assert!(epoch >= last_epoch, "epoch went backwards");
                    assert!(est >= last_est, "count snapshot decreased");
                    (last_epoch, last_est) = (epoch, est);
                }
            })
        })
        .collect();

    feed_round_robin(&mut ex, N, 0);
    ex.quiesce();
    for r in readers {
        r.join().expect("reader thread panicked");
    }
    let truth = ex.query(|c: &DetCountCoord| c.estimate());
    assert_eq!(
        handle.read(|s| s.state.estimate()),
        truth,
        "post-quiesce handle answer not exact"
    );
    assert!(
        (truth - N as f64).abs() <= EPS * N as f64 + 1.0,
        "estimate {truth} too far from {N}"
    );
    assert_eq!(ex.stats().elements, N, "storm lost or duplicated elements");
}

/// The randomized protocol under the same storm shape (readers can't
/// assert monotonicity — the estimator subtracts a correction — but
/// answers must stay finite and the post-quiesce answer exact).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "threaded storm over the randomized protocol; covered by release CI"
)]
fn randomized_count_storm_stays_consistent() {
    let proto = RandomizedCount::new(TrackingConfig::new(K, EPS));
    let n = 1_000_000u64;
    let mut rt: ChannelRuntime<RandomizedCount> = ChannelRuntime::new(&proto, 5);
    // `query_handle` needs exclusive access; take it before sharing.
    let handle = rt.query_handle();
    let rt = Arc::new(rt);

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let h = handle.clone();
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let (epoch, est) = h.read(|s| (s.epoch, s.state.estimate()));
                    assert!(epoch >= last_epoch, "epoch went backwards");
                    assert!(est.is_finite(), "estimate not finite");
                    last_epoch = epoch;
                }
            })
        })
        .collect();

    let producers: Vec<_> = (0..4u64)
        .map(|p| {
            let rt = Arc::clone(&rt);
            thread::spawn(move || {
                for t in 0..n / 4 {
                    let g = p * (n / 4) + t;
                    rt.feed((g % K as u64) as usize, g);
                }
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    rt.quiesce();
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader thread panicked");
    }
    let truth = rt.with_coord(|c| c.estimate());
    assert_eq!(handle.read(|s| s.state.estimate()), truth);
    assert!((truth - n as f64).abs() <= 2.0 * EPS * n as f64);
    let rt = Arc::into_inner(rt).expect("all producers joined");
    assert_eq!(rt.shutdown().elements, n);
}
