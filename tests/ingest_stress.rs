//! Release-mode ingest stress for the lock-free channel runtime.
//!
//! The transport under test (`dtrack::sim::ring` + the thread-per-site
//! runtime built on it) replaces mutex-guarded queues with SPSC rings,
//! an atomic credit gate, and spin-then-park idling. These tests push
//! element volumes large enough that every cold path fires thousands of
//! times — ring wraparound, full-ring producer parking, credit
//! exhaustion and release, consumer park/unpark — and then check the
//! one invariant that catches every lost- or duplicated-element bug:
//! **exact element accounting** (`stats.elements == n`, per-site sums
//! reaching the coordinator intact).
//!
//! Debug builds ignore these tests (they are sized for `--release`; CI
//! runs them there under a bounded timeout).

use std::sync::Arc;
use std::thread;

use dtrack::core::count::RandomizedCount;
use dtrack::core::TrackingConfig;
use dtrack::sim::runtime::ChannelRuntime;
use dtrack::sim::{ExecConfig, Executor};

/// Batched fast path: millions of elements through `feed_batch` on the
/// channel executor. The batch is ~250× the per-site ring capacity, so
/// producers park on full rings and sites park on empty ones all the
/// way through; quiesce must still observe every element exactly once.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "multi-million element ingest; covered by release CI"
)]
fn batched_ingest_accounts_for_every_element() {
    let (k, eps, n) = (16usize, 0.05, 4_000_000u64);
    let proto = RandomizedCount::new(TrackingConfig::new(k, eps));
    let mut ex = ExecConfig::channel().build(&proto, 42);
    let batch: Vec<(usize, u64)> = (0..n).map(|t| ((t % k as u64) as usize, t)).collect();
    ex.feed_batch(batch);
    ex.quiesce();
    let est: f64 = ex.query(|c: &dtrack::core::count::RandCountCoord| c.estimate());
    assert!(
        (est - n as f64).abs() <= 2.0 * eps * n as f64,
        "estimate {est} too far from {n}"
    );
    let stats = ex.stats();
    assert_eq!(stats.elements, n, "ingest lost or duplicated elements");
    assert!(stats.total_msgs() > 0);
}

/// Concurrent producers: several OS threads feeding one runtime through
/// the `&self` per-element path, all racing the multi-producer ring
/// CAS. Accounting must stay exact — the coordinator's element count
/// and the sum each site forwards both have single known answers.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "threaded million-element ingest; covered by release CI"
)]
fn racing_producers_keep_exact_accounting() {
    let (k, eps) = (8usize, 0.1);
    let producers = 4u64;
    let per_producer = 250_000u64;
    let n = producers * per_producer;
    let proto = RandomizedCount::new(TrackingConfig::new(k, eps));
    let rt: Arc<ChannelRuntime<RandomizedCount>> = Arc::new(ChannelRuntime::new(&proto, 7));
    let handles: Vec<_> = (0..producers)
        .map(|p| {
            let rt = Arc::clone(&rt);
            thread::spawn(move || {
                for t in 0..per_producer {
                    let g = p * per_producer + t;
                    rt.feed((g % k as u64) as usize, g);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    rt.quiesce();
    let est = rt.with_coord(|c| c.estimate());
    assert!(
        (est - n as f64).abs() <= 2.0 * eps * n as f64,
        "estimate {est} too far from {n}"
    );
    let rt = Arc::into_inner(rt).expect("all producer clones joined");
    let stats = rt.shutdown();
    assert_eq!(stats.elements, n, "racing producers corrupted accounting");
}
