//! Non-stationary workloads and the top-k layer: the per-round restart
//! logic must keep estimates correct when the hot set moves, and the
//! Theorem-3.2 sequential arrival order must not break anything. The
//! drifting-hot-set scenario runs over an [`ExecConfig`] matrix (the
//! same config enum the experiment binaries use), including a delayed
//! delivery policy — a moving hot set under stale feedback is exactly
//! the regime the per-round restart logic could get wrong.

use dtrack::core::frequency::{RandomizedFrequency, TopK};
use dtrack::core::rank::RandomizedRank;
use dtrack::core::TrackingConfig;
use dtrack::sim::exec::EventRuntime;
use dtrack::sim::{DeliveryPolicy, ExecConfig, Executor, Runner};
use dtrack::sketch::exact::ExactCounts;
use dtrack::workload::items::DistinctSeq;
use dtrack::workload::{DriftingItems, Pacing, RoundRobin, Sequential, Workload};

#[test]
fn frequency_tracks_a_drifting_hot_set() {
    let (k, eps, n) = (8, 0.02, 160_000u64);
    let cfg = TrackingConfig::new(k, eps);
    for (exec, slack) in [
        (ExecConfig::lockstep(), 2.0),
        // A drifting hot set with 8-tick-stale feedback: the restart
        // logic lags the drift, so allow an extra εn of error.
        (ExecConfig::event(DeliveryPolicy::FixedLatency(8)), 3.0),
    ] {
        // Hot set rotates 4 times during the run.
        let items = DriftingItems::new(1_000, 1.3, n / 4, 250);
        let arrivals = Workload::new(items, RoundRobin::new(k), n, 5).collect_vec();
        let mut exact = ExactCounts::new();
        let mut ex = exec.build(&RandomizedFrequency::new(cfg), 6);
        ex.feed_batch(
            arrivals
                .iter()
                .map(|a| {
                    exact.observe(a.item);
                    (a.site, a.item)
                })
                .collect(),
        );
        ex.quiesce();
        // Each phase's hottest item (0, 250, 500, 750) must be well estimated.
        for &hot in &[0u64, 250, 500, 750] {
            let est = ex.coord().expect("in-process").estimate_frequency(hot);
            let truth = exact.frequency(hot) as f64;
            assert!(
                (est - truth).abs() <= slack * eps * n as f64,
                "{exec} hot {hot}: est {est} truth {truth}"
            );
            assert!(truth > 0.05 * n as f64, "workload sanity: {truth}");
        }
    }
}

#[test]
fn bursty_timed_schedule_through_the_event_queue() {
    // A timed schedule (bursts of 64 arrivals, 100 idle ticks apart)
    // driven through `feed_at` under fixed-latency delivery: every
    // burst is fully in flight before any coordinator feedback lands —
    // the adversarial regime for the control loop — yet after quiesce
    // the frequency estimates must still meet a relaxed bound.
    let (k, eps, n) = (8, 0.05, 60_000u64);
    let cfg = TrackingConfig::new(k, eps);
    let schedule = Workload::new(
        DriftingItems::new(500, 1.3, n / 2, 100),
        RoundRobin::new(k),
        n,
        11,
    )
    .timed(Pacing::Bursty {
        burst: 64,
        idle: 100,
    });
    let mut exact = ExactCounts::new();
    let mut rt = EventRuntime::with_policy(
        &RandomizedFrequency::new(cfg),
        12,
        DeliveryPolicy::FixedLatency(50),
    );
    for ta in schedule {
        exact.observe(ta.item);
        rt.feed_at(ta.at, ta.site, ta.item);
    }
    rt.quiesce();
    for &hot in &[0u64, 100] {
        let est = rt.coord().estimate_frequency(hot);
        let truth = exact.frequency(hot) as f64;
        assert!(truth > 0.03 * n as f64, "workload sanity: {truth}");
        assert!(
            (est - truth).abs() <= 3.0 * eps * n as f64,
            "hot {hot}: est {est} truth {truth}"
        );
    }
}

#[test]
fn topk_follows_the_drift() {
    let (k, eps, n) = (8, 0.01, 120_000u64);
    let cfg = TrackingConfig::new(k, eps);
    // Single drift halfway: first half hot item 0, second half hot 500.
    let items = DriftingItems::new(1_000, 1.6, n / 2, 500);
    let arrivals = Workload::new(items, RoundRobin::new(k), n, 7).collect_vec();
    let mut r = Runner::new(&RandomizedFrequency::new(cfg), 8);
    for a in &arrivals {
        r.feed(a.site, &a.item);
    }
    let top = TopK::compute(r.coord(), 2, eps * n as f64);
    let ids = top.ids();
    assert!(ids.contains(&0), "missing phase-1 hot item: {ids:?}");
    assert!(ids.contains(&500), "missing phase-2 hot item: {ids:?}");
}

#[test]
fn sequential_arrivals_theorem_3_2_shape() {
    // Site 0 gets all its elements first, then site 1, … — the arrival
    // order from the Theorem 3.2 reduction. Frequency and rank must stay
    // within their guarantees (this is also the worst case for the
    // virtual-site splitting, since load is maximally bursty per site).
    let (k, eps, n) = (8, 0.05, 80_000u64);
    let cfg = TrackingConfig::new(k, eps);

    // Frequency over a small domain.
    let mut freq = Runner::new(&RandomizedFrequency::new(cfg), 9);
    let arrivals =
        Workload::new(DistinctSeq::new(3), Sequential::new(k, n / k as u64), n, 10).collect_vec();
    let mut exact = ExactCounts::new();
    for a in &arrivals {
        let item = a.item % 16; // fold distinct values onto 16 items
        freq.feed(a.site, &item);
        exact.observe(item);
    }
    let est = freq.coord().estimate_frequency(7);
    let truth = exact.frequency(7) as f64;
    assert!(
        (est - truth).abs() <= 2.0 * eps * n as f64,
        "freq est {est} truth {truth}"
    );

    // Rank over distinct values.
    let mut rank = Runner::new(&RandomizedRank::new(cfg), 11);
    let mut all = Vec::new();
    for a in &arrivals {
        rank.feed(a.site, &a.item);
        all.push(a.item);
    }
    all.sort_unstable();
    let x = all[all.len() / 2];
    let truth = all.partition_point(|&v| v < x) as f64;
    let est = rank.coord().estimate_rank(x);
    assert!(
        (est - truth).abs() <= 3.0 * eps * n as f64,
        "rank est {est} truth {truth}"
    );
}
