//! Workspace-wiring smoke test: every Table-1 protocol must be reachable
//! and runnable through the `dtrack` umbrella re-exports alone. This pins
//! the facade (`dtrack::core`, `dtrack::sim`, ...) so a future refactor
//! cannot silently break downstream `use dtrack::...` paths.

use dtrack::core::count::{DeterministicCount, RandomizedCount};
use dtrack::core::frequency::{DeterministicFrequency, RandomizedFrequency};
use dtrack::core::rank::{DeterministicRank, RandomizedRank};
use dtrack::core::sampling::ContinuousSampling;
use dtrack::core::TrackingConfig;
use dtrack::sim::Runner;

const K: usize = 4;
const N: u64 = 2_000;
const SEED: u64 = 9;

fn cfg() -> TrackingConfig {
    TrackingConfig::new(K, 0.2)
}

/// Feed a short round-robin stream and return the runner for querying.
fn drive<P: dtrack::sim::Protocol>(proto: &P) -> Runner<P>
where
    P::Site: dtrack::sim::Site<Item = u64>,
{
    let mut r = Runner::new(proto, SEED);
    for t in 0..N {
        r.feed((t % K as u64) as usize, &(t % 50));
    }
    r
}

#[test]
fn randomized_count_via_facade() {
    let r = drive(&RandomizedCount::new(cfg()));
    let est = r.coord().estimate();
    assert!(est > 0.0, "estimate {est}");
    assert!(r.stats().total_msgs() > 0);
}

#[test]
fn deterministic_count_via_facade() {
    let r = drive(&DeterministicCount::new(cfg()));
    let est = r.coord().estimate();
    // The deterministic guarantee is unconditional.
    assert!(est <= N as f64 && N as f64 <= est * 1.2 + 1e-9, "est {est}");
}

#[test]
fn randomized_frequency_via_facade() {
    let r = drive(&RandomizedFrequency::new(cfg()));
    let est = r.coord().estimate_frequency(7);
    assert!(est.is_finite());
}

#[test]
fn deterministic_frequency_via_facade() {
    let r = drive(&DeterministicFrequency::new(cfg()));
    // Item 7 appears N/50 = 40 times; deterministic error ≤ εn.
    let est = r.coord().estimate_frequency(7);
    assert!((est - 40.0).abs() <= 0.2 * N as f64 + 1e-9, "est {est}");
}

#[test]
fn randomized_rank_via_facade() {
    let r = drive(&RandomizedRank::new(cfg()));
    let est = r.coord().estimate_rank(25);
    assert!(est.is_finite());
    // Monotone in the query point.
    assert!(r.coord().estimate_rank(50) + 1e-9 >= est);
}

#[test]
fn deterministic_rank_via_facade() {
    // Rank tracking assumes duplicate-free streams; use distinct items.
    let proto = DeterministicRank::new(cfg());
    let mut r = Runner::new(&proto, SEED);
    for t in 0..N {
        r.feed((t % K as u64) as usize, &t);
    }
    let est = r.coord().estimate_rank(N / 2);
    assert!(
        (est - (N / 2) as f64).abs() <= 0.2 * N as f64 + 1.0,
        "est {est}"
    );
}

#[test]
fn continuous_sampling_via_facade() {
    let proto = ContinuousSampling::new(cfg());
    let mut r = Runner::new(&proto, SEED);
    for t in 0..N {
        r.feed((t % K as u64) as usize, &t);
    }
    let c = r.coord();
    assert!(c.estimate_count().is_finite());
    assert!(c.estimate_frequency(1).is_finite());
    assert!(c.estimate_rank(N / 2).is_finite());
}

/// The other facade modules resolve and expose their headline types.
#[test]
fn sibling_facades_resolve() {
    use dtrack::bounds::SamplingProblem;
    use dtrack::sketch::MisraGries;
    use dtrack::workload::{UniformItems, UniformSites, Workload};

    let mut mg = MisraGries::new(4);
    mg.observe(1);
    assert_eq!(mg.estimate(1), 1);

    let wl = Workload::new(UniformItems::new(10), UniformSites::new(3), 5, 1);
    assert_eq!(wl.collect_vec().len(), 5);

    let _ = SamplingProblem::new(64);
}
