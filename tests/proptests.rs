//! Property-based integration tests: protocol invariants under arbitrary
//! arrival interleavings, item distributions, parameters — and, since
//! the fault-injection layer landed, arbitrary loss/duplication
//! schedules over randomly assembled scenario strings.

use dtrack::core::count::{DeterministicCount, RandomizedCount};
use dtrack::core::frequency::{DeterministicFrequency, RandomizedFrequency};
use dtrack::core::rank::{DeterministicRank, RandomizedRank};
use dtrack::core::sampling::ContinuousSampling;
use dtrack::core::TrackingConfig;
use dtrack::sim::exec::EventRuntime;
use dtrack::sim::{ExecConfig, Executor, FaultPlan, Protocol, Runner, Site, Tree, TreeSpec};
use proptest::prelude::*;

/// Snapshot-equivalence harness for the live-query layer (the staleness
/// battery lives in `tests/query_storm.rs`). With a [`QueryHandle`]
/// installed, the lock-step `Runner` and the instant `EventRuntime`
/// publish at identical boundaries — once per element fed, once per
/// quiesce — so their `(epoch, answers)` pairs must agree bit-for-bit
/// at **every** epoch, not merely at quiescence. The channel executor's
/// publish points are scheduling-dependent (one per coordinator apply),
/// so its property is necessarily weaker: epochs are monotone under
/// reads racing real threads, answers stay finite, and the post-quiesce
/// handle answer equals the stop-the-world query exactly.
///
/// [`QueryHandle`]: dtrack::sim::QueryHandle
fn assert_snapshot_equivalence<P, Q>(
    name: &str,
    proto: &P,
    seed: u64,
    arrivals: &[(usize, u64)],
    queries: Q,
) where
    P: Protocol,
    P::Site: Site<Item = u64> + Send + 'static,
    P::Coord: Clone + Send + Sync + 'static,
    <P::Site as Site>::Up: Send + 'static,
    <P::Site as Site>::Down: Send + 'static,
    Q: Fn(&P::Coord) -> Vec<f64> + Clone + Send + 'static,
{
    // Lock-step vs instant event executor: identical epochs, identical
    // answers, at every publish boundary.
    let mut runner = Runner::new(proto, seed);
    let mut event = EventRuntime::new(proto, seed);
    let hr = runner.query_handle();
    let he = Executor::<P>::query_handle(&mut event);
    assert_eq!(hr.epoch(), 0, "{name}: runner handle not fresh at epoch 0");
    assert_eq!(he.epoch(), 0, "{name}: event handle not fresh at epoch 0");
    for &(site, item) in arrivals {
        runner.feed(site, &item);
        event.feed(site, item);
        let a = hr.read(|s| (s.epoch, queries(&s.state)));
        let b = he.read(|s| (s.epoch, queries(&s.state)));
        assert_eq!(a, b, "{name}: runner/event snapshots diverged mid-stream");
        assert!(
            a.1.iter().all(|v| v.is_finite()),
            "{name}: non-finite live answer {:?}",
            a.1
        );
    }
    Executor::<P>::quiesce(&mut runner);
    event.quiesce();
    let a = hr.read(|s| (s.epoch, queries(&s.state)));
    let b = he.read(|s| (s.epoch, queries(&s.state)));
    assert_eq!(
        a, b,
        "{name}: runner/event snapshots diverged after quiesce"
    );
    assert_eq!(
        a.1,
        queries(runner.coord()),
        "{name}: post-quiesce handle answers differ from the coordinator"
    );

    // Channel executor: monotone epochs while real threads race, exact
    // agreement with the stop-the-world query once quiesced.
    let mut ch = ExecConfig::channel().build(proto, seed);
    let hc = Executor::<P>::query_handle(&mut ch);
    let mut last_epoch = 0u64;
    for &(site, item) in arrivals {
        ch.feed(site, item);
        let (epoch, ans) = hc.read(|s| (s.epoch, queries(&s.state)));
        assert!(epoch >= last_epoch, "{name}: channel epoch went backwards");
        last_epoch = epoch;
        assert!(
            ans.iter().all(|v| v.is_finite()),
            "{name}: non-finite channel live answer {ans:?}"
        );
    }
    ch.quiesce();
    let truth = ch.query({
        let q = queries.clone();
        move |c: &P::Coord| q(c)
    });
    let (epoch, ans) = hc.read(|s| (s.epoch, queries(&s.state)));
    assert!(epoch >= last_epoch, "{name}: channel epoch went backwards");
    assert_eq!(
        ans, truth,
        "{name}: channel post-quiesce handle answers differ from query"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The deterministic count baseline's guarantee is unconditional:
    /// n̂ ≤ n ≤ (1+ε)n̂ at every instant for ANY interleaving.
    #[test]
    fn deterministic_count_invariant(
        sites in proptest::collection::vec(0usize..6, 1..2000),
        eps in 0.02f64..0.5,
    ) {
        let cfg = TrackingConfig::new(6, eps);
        let mut r = Runner::new(&DeterministicCount::new(cfg), 0);
        for (t, &s) in sites.iter().enumerate() {
            r.feed(s, &(t as u64));
            let n = (t + 1) as f64;
            let est = r.coord().estimate();
            prop_assert!(est <= n + 1e-9);
            prop_assert!(n <= est * (1.0 + eps) + 1e-9);
        }
    }

    /// Randomized count: the estimate is always non-negative, never more
    /// than a constant multiple of n, and exact while p = 1.
    #[test]
    fn randomized_count_sanity(
        sites in proptest::collection::vec(0usize..4, 1..1500),
        seed in 0u64..1000,
    ) {
        let cfg = TrackingConfig::new(4, 0.2);
        let mut r = Runner::new(&RandomizedCount::new(cfg), seed);
        for (t, &s) in sites.iter().enumerate() {
            r.feed(s, &(t as u64));
            let est = r.coord().estimate();
            prop_assert!(est >= 0.0);
            if r.coord().p() == 1.0 {
                prop_assert!((est - (t + 1) as f64).abs() < 1e-9,
                    "p=1 must be exact: est {est} at t {t}");
            }
        }
        // Message conservation: words ≥ messages ≥ broadcast charge.
        let st = r.stats();
        prop_assert!(st.total_words() >= st.total_msgs());
        prop_assert!(st.down_msgs >= st.broadcast_events * 4);
    }

    /// Frequency: Σ over the whole (small) domain of estimates is an
    /// unbiased estimate of n — check the average over seeds (a single
    /// run's sum has std Θ(εn·√domain), too noisy to pin down).
    #[test]
    fn frequency_mass_conservation(
        items in proptest::collection::vec(0u64..8, 200..800),
        seed0 in 0u64..500,
    ) {
        let k = 4;
        let cfg = TrackingConfig::new(k, 0.25);
        let n = items.len() as f64;
        let seeds = 16;
        let mut avg = 0.0;
        for s in 0..seeds {
            let mut r = Runner::new(&RandomizedFrequency::new(cfg), seed0 + s);
            for (t, &item) in items.iter().enumerate() {
                r.feed(t % k, &item);
            }
            avg += (0..8u64).map(|j| r.coord().estimate_frequency(j)).sum::<f64>();
        }
        avg /= seeds as f64;
        prop_assert!((avg - n).abs() <= 0.6 * n + 16.0, "avg {avg} vs n {n}");
    }

    /// Rank estimates are monotone in the query point and bounded by the
    /// unbiased total, for any distinct-item stream.
    #[test]
    fn rank_monotonicity(
        salt in 1u64..5000,
        seed in 0u64..500,
        n in 100u64..1500,
    ) {
        let cfg = TrackingConfig::new(4, 0.3);
        let mut r = Runner::new(&RandomizedRank::new(cfg), seed);
        let seq = dtrack::workload::items::DistinctSeq::new(salt);
        for t in 0..n {
            r.feed((t % 4) as usize, &seq.value_at(t));
        }
        let mut prev = 0.0f64;
        prop_assert!(r.coord().estimate_rank(0) >= 0.0);
        for x in (0..=u64::MAX - 1).step_by(usize::MAX / 16) {
            let est = r.coord().estimate_rank(x);
            prop_assert!(est + 1e-9 >= prev, "dip at {x}: {est} < {prev}");
            prev = est;
        }
        let total = r.coord().estimate_rank(u64::MAX);
        prop_assert!((total - n as f64).abs() <= 0.9 * n as f64 + 8.0);
    }

    /// Fault schedules are data: any `+loss`/`+dup` mix over any delay
    /// policy, assembled into a scenario string, parses, runs an
    /// arbitrary interleaving to quiescence without panicking, and keeps
    /// the deterministic count baseline's unconditional ε invariant —
    /// the transport may delay, retry, and duplicate, but the protocol
    /// must observe an exactly-once in-order stream. The proptest
    /// harness shrinks `sites`/`loss`/`dup` toward minimal failing
    /// schedules.
    #[test]
    fn lossy_duplicating_links_never_violate_deterministic_count(
        sites in proptest::collection::vec(0usize..6, 1..600),
        loss in 0.0f64..0.4,
        dup in 0.0f64..0.5,
        delay in 0u64..12,
        eps in 0.05f64..0.5,
        seed in 0u64..1000,
    ) {
        let spec = format!("event:random:0:{}+loss:{loss}+dup:{dup}", delay + 1);
        let exec: ExecConfig = spec.parse().expect("assembled spec must parse");
        let cfg = TrackingConfig::new(6, eps);
        let mut ex = exec.build(&DeterministicCount::new(cfg), seed);
        for (t, &s) in sites.iter().enumerate() {
            ex.feed(s, t as u64);
        }
        ex.quiesce();
        let n = sites.len() as f64;
        let est = ex.query(|c: &dtrack::core::count::DetCountCoord| c.estimate());
        prop_assert!(est <= n + 1e-9, "{spec}: n̂ {est} > n {n}");
        prop_assert!(n <= est * (1.0 + eps) + 1e-9, "{spec}: n {n} ≰ (1+ε)n̂");
    }

    /// The same fault mix over the randomized frequency protocol: never
    /// panics, answers stay finite and within a coarse multiple of n
    /// (the sharp ε statement is the release-gated suite's job; this one
    /// buys breadth — hundreds of random fault schedules per CI run).
    #[test]
    fn lossy_duplicating_links_keep_frequency_sane(
        items in proptest::collection::vec(0u64..8, 100..600),
        loss in 0.0f64..0.4,
        dup in 0.0f64..0.5,
        seed in 0u64..1000,
    ) {
        let spec = format!("event+loss:{loss}+dup:{dup}");
        let exec: ExecConfig = spec.parse().expect("assembled spec must parse");
        let k = 4;
        let cfg = TrackingConfig::new(k, 0.25);
        let mut ex = exec.build(&RandomizedFrequency::new(cfg), seed);
        for (t, &item) in items.iter().enumerate() {
            ex.feed(t % k, item);
        }
        ex.quiesce();
        let n = items.len() as f64;
        for j in 0..8u64 {
            let est = ex.query(
                move |c: &dtrack::core::frequency::RandFreqCoord| c.estimate_frequency(j),
            );
            prop_assert!(est.is_finite(), "{spec}: estimate_frequency({j}) = {est}");
            prop_assert!(est.abs() <= 3.0 * n + 8.0, "{spec}: |f̂({j})| = {est} vs n {n}");
        }
    }

    /// Scenario strings round-trip for ANY valid fault plan, not just
    /// the hand-picked table in `exec::tests`: Display∘parse is the
    /// identity on (mode, window, plan).
    #[test]
    fn any_valid_fault_plan_round_trips_through_the_scenario_string(
        loss in 0.0f64..0.9,
        dup in 0.0f64..1.0,
        churn in 0.0f64..0.5,
        straggle in 0u64..10_000,
        window in 0u64..1_000_000,
    ) {
        let plan = FaultPlan::none()
            .with_loss(loss)
            .with_dup(dup)
            .with_churn(churn)
            .with_straggle(straggle);
        prop_assert!(plan.validate().is_ok());
        let mut cfg = ExecConfig::event(dtrack::sim::DeliveryPolicy::Instant).faulty(plan);
        if window >= 2 {
            cfg = cfg.windowed(window);
        }
        let rendered = cfg.to_string();
        let reparsed: ExecConfig = rendered.parse()
            .unwrap_or_else(|e| panic!("{rendered:?} failed to reparse: {e}"));
        prop_assert_eq!(reparsed, cfg, "{}", rendered);
    }

    /// Space accounting: the frequency site never exceeds its cap by more
    /// than a constant factor, on any workload shape.
    #[test]
    fn frequency_space_capped(
        hot_site in 0usize..4,
        n in 500u64..4000,
        seed in 0u64..200,
    ) {
        let k = 4;
        let eps = 0.1;
        let cfg = TrackingConfig::new(k, eps);
        let mut r = Runner::new(&RandomizedFrequency::new(cfg), seed);
        for t in 0..n {
            r.feed(hot_site, &t); // all-distinct, single-site: worst case
        }
        // Expected cap: 2 words per counter, ≤ p·(n̄/k) counters + consts;
        // generous multiple to absorb binomial tails.
        let bound = 40.0 / (eps * (k as f64).sqrt()) + 80.0;
        prop_assert!((r.space().max_peak() as f64) < bound,
            "peak {} ≥ {bound}", r.space().max_peak());
    }

    /// Live-query snapshots agree across all three executors for every
    /// Table-1 protocol, on arbitrary arrival interleavings: runner and
    /// instant event runtime are bit-identical at matching epochs
    /// (strong form), the channel runtime is monotone while racing and
    /// exact after quiesce (weak form — its epochs are real-scheduling
    /// artifacts). See `assert_snapshot_equivalence` for the contract.
    #[test]
    fn live_handles_agree_across_executors_for_all_protocols(
        sites in proptest::collection::vec(0usize..4, 20..80),
        seed in 0u64..500,
    ) {
        let cfg = TrackingConfig::new(4, 0.2);
        // Small-domain items exercise count/frequency merging; rank and
        // sampling assume duplicate-free streams, so they get distinct
        // items from the same interleaving.
        let zipfish: Vec<(usize, u64)> = sites.iter().enumerate()
            .map(|(t, &s)| (s, (t as u64 * 7) % 16)).collect();
        let distinct: Vec<(usize, u64)> = sites.iter().enumerate()
            .map(|(t, &s)| (s, t as u64)).collect();

        assert_snapshot_equivalence(
            "randomized count", &RandomizedCount::new(cfg), seed, &zipfish,
            |c: &dtrack::core::count::RandCountCoord| vec![c.estimate()],
        );
        assert_snapshot_equivalence(
            "deterministic count", &DeterministicCount::new(cfg), seed, &zipfish,
            |c: &dtrack::core::count::DetCountCoord| vec![c.estimate()],
        );
        assert_snapshot_equivalence(
            "randomized frequency", &RandomizedFrequency::new(cfg), seed, &zipfish,
            |c: &dtrack::core::frequency::RandFreqCoord| {
                (0..10).map(|j| c.estimate_frequency(j)).collect()
            },
        );
        assert_snapshot_equivalence(
            "deterministic frequency", &DeterministicFrequency::new(cfg), seed, &zipfish,
            |c: &dtrack::core::frequency::DetFreqCoord| {
                (0..10).map(|j| c.estimate_frequency(j)).collect()
            },
        );
        assert_snapshot_equivalence(
            "randomized rank", &RandomizedRank::new(cfg), seed, &distinct,
            |c: &dtrack::core::rank::RandRankCoord| {
                [u64::MAX / 4, u64::MAX / 2, u64::MAX / 4 * 3]
                    .iter().map(|&x| c.estimate_rank(x)).collect()
            },
        );
        assert_snapshot_equivalence(
            "deterministic rank", &DeterministicRank::new(cfg), seed, &distinct,
            |c: &dtrack::core::rank::DetRankCoord| {
                [u64::MAX / 4, u64::MAX / 2, u64::MAX / 4 * 3]
                    .iter().map(|&x| c.estimate_rank(x)).collect()
            },
        );
        assert_snapshot_equivalence(
            "continuous sampling", &ContinuousSampling::new(cfg), seed, &distinct,
            |c: &dtrack::core::sampling::SamplingCoord| {
                vec![
                    c.estimate_count(),
                    c.estimate_frequency(3),
                    c.estimate_rank(u64::MAX / 2),
                ]
            },
        );
    }

    /// A depth-1 `+tree` is the flat star, bit for bit, on ANY
    /// interleaving and seed — same estimate bits, same message and
    /// word accounting (the `Tree` layer forwards verbatim until it has
    /// levels to add).
    #[test]
    fn depth1_tree_equals_flat_on_any_interleaving(
        sites in proptest::collection::vec(0usize..6, 1..400),
        seed in 0u64..1000,
        fanout in 2usize..9,
    ) {
        let cfg = TrackingConfig::new(6, 0.2);
        let proto = RandomizedCount::new(cfg);
        let tree = Tree::new(proto, TreeSpec::new(fanout).with_depth(1));
        let mut rf = Runner::new(&proto, seed);
        let mut rt = Runner::new(&tree, seed);
        for (t, &s) in sites.iter().enumerate() {
            rf.feed(s, &(t as u64));
            rt.feed(s, &(t as u64));
            prop_assert_eq!(
                rf.coord().estimate().to_bits(),
                rt.coord().root().estimate().to_bits(),
                "depth-1 root diverged from flat at t = {}", t
            );
        }
        prop_assert_eq!(rf.stats(), rt.stats());
    }

    /// The split-ε bound, as a property: a depth-2 deterministic-count
    /// tree over ANY interleaving keeps `n̂ ≤ n` (replay floors only
    /// under-replay) and `n ≤ (1+ε/2)²·n̂ + A·(1+ε/2)²` where `A` counts
    /// the aggregators — each level contributes its `(1+ε/2)` factor
    /// and each aggregator loses < 1 element to its replay floor. The
    /// tree answer therefore stays within the combined budget of the
    /// flat star's answer (both live in `[floor, n]`, so their gap is
    /// bounded by the larger deficit).
    #[test]
    fn depth2_tree_count_stays_within_the_split_eps_bound(
        sites in proptest::collection::vec(0usize..6, 1..800),
        eps in 0.05f64..0.5,
        seed in 0u64..500,
    ) {
        let cfg = TrackingConfig::new(6, eps);
        let proto = DeterministicCount::new(cfg);
        let tree = Tree::new(proto, TreeSpec::new(3).with_depth(2));
        let mut rf = Runner::new(&proto, seed);
        let mut rt = Runner::new(&tree, seed);
        for (t, &s) in sites.iter().enumerate() {
            rf.feed(s, &(t as u64));
            rt.feed(s, &(t as u64));
        }
        let n = sites.len() as f64;
        let aggs = rt.coord().aggregators() as f64;
        let per2 = (1.0 + eps / 2.0).powi(2);
        let est = rt.coord().root().estimate();
        prop_assert!(est <= n + 1e-9, "tree n̂ {} > n {}", est, n);
        prop_assert!(
            n <= est * per2 + aggs * per2 + 1e-9,
            "n {} > (1+ε/2)²·n̂ + A·(1+ε/2)²  (n̂ = {}, A = {})", n, est, aggs
        );
        // Tree-vs-flat gap: flat ≥ n/(1+ε), tree ≥ n/(1+ε/2)² − A, and
        // both ≤ n, so the gap is at most the larger deficit from n.
        let flat = rf.coord().estimate();
        let floor = (n / (1.0 + eps)).min(n / per2 - aggs);
        prop_assert!(
            (est - flat).abs() <= n - floor + 1e-9,
            "tree {} vs flat {} further apart than the split-ε budget {}",
            est, flat, n - floor
        );
    }
}
