//! The hierarchical-topology suite — the correctness story for
//! `dtrack_sim::exec::topology` (sites → aggregators → root).
//!
//! Three layers of guarantees, cheapest first:
//!
//! 1. **Depth-1 identity** (debug-fast): a `+tree` of depth 1 *is* the
//!    flat star — same seeds, same messages, same answers, bit for bit,
//!    on both the lock-step runner and the instant event runtime. The
//!    tree layer provably adds nothing until it adds levels.
//! 2. **Smoke** (debug-fast): depth ≥ 2 trees parsed from scenario
//!    strings run to quiescence on every executor — with faults on the
//!    leaf links, with live query handles at the root — and keep the
//!    deterministic count baseline's unconditional-style invariant
//!    (`n̂ ≤ n`, with the per-level `(1+ε/d)` factors and the O(nodes)
//!    replay-floor rounding made explicit in the lower bound).
//! 3. **ε bounds** (release-gated, ≥ 20 seeds): count, frequency, and
//!    rank meet the mean-error-≤-ε acceptance bound at depth 2 and at
//!    depth 4 (binary tree) — the per-level ε/d split composes to the
//!    whole-tree budget like the module docs claim.

use dtrack::core::count::{DeterministicCount, RandomizedCount};
use dtrack::core::frequency::RandomizedFrequency;
use dtrack::core::rank::DeterministicRank;
use dtrack::core::TrackingConfig;
use dtrack::sim::exec::{DeliveryPolicy, EventRuntime};
use dtrack::sim::{ExecConfig, Executor, Runner, Site, Tree, TreeCoord, TreeSpec};
use dtrack::workload::items::DistinctSeq;
use dtrack::workload::{UniformSites, Workload, ZipfItems};
use dtrack_bench::measure::{
    count_run, tree_count_run, tree_frequency_run, tree_rank_run, CountAlgo, FreqAlgo, RankAlgo,
};

const K: usize = 8;
const N: u64 = 6_000;
const SEED: u64 = 42;

fn cfg() -> TrackingConfig {
    TrackingConfig::new(K, 0.1)
}

fn zipf_arrivals() -> Vec<(usize, u64)> {
    Workload::new(ZipfItems::new(500, 1.2), UniformSites::new(K), N, 7)
        .map(|a| (a.site, a.item))
        .collect()
}

fn distinct_arrivals() -> Vec<(usize, u64)> {
    Workload::new(DistinctSeq::new(7), UniformSites::new(K), N, 7)
        .map(|a| (a.site, a.item))
        .collect()
}

// --- layer 1: depth-1 identity ---

/// Drive the flat protocol and its depth-1 tree wrapping side by side
/// on one executor-pair and require identical accounting, space, and
/// (bit-exact) query answers. The tree coordinator must also report
/// itself as the degenerate shape: depth 1, no aggregators, no internal
/// boundaries.
fn assert_depth1_identity<P, Q>(name: &str, proto: &P, arrivals: &[(usize, u64)], queries: Q)
where
    P: dtrack::sim::TreeProtocol + Clone,
    P::Site: Site<Item = u64>,
    <P::Site as Site>::Up: Clone,
    Q: Fn(&P::Coord) -> Vec<f64>,
{
    let tree = Tree::new(proto.clone(), TreeSpec::new(4).with_depth(1));
    let mut flat = Runner::new(proto, SEED);
    let mut wrapped = Runner::new(&tree, SEED);
    for &(site, item) in arrivals {
        flat.feed(site, &item);
        wrapped.feed(site, &item);
    }
    assert_eq!(
        flat.stats(),
        wrapped.stats(),
        "{name}: depth-1 CommStats differ"
    );
    for site in 0..K {
        assert_eq!(
            flat.space().peak(site),
            wrapped.space().peak(site),
            "{name}: depth-1 space peak differs at site {site}"
        );
    }
    assert_eq!(
        queries(flat.coord()),
        queries(wrapped.coord().root()),
        "{name}: depth-1 root answers differ from flat"
    );
    assert_eq!(wrapped.coord().depth(), 1);
    assert_eq!(wrapped.coord().aggregators(), 0);
    assert!(wrapped.coord().internal_loads().is_empty());
    assert_eq!(wrapped.coord().root_load(), None);

    // Same identity on the instant event runtime (the two executors are
    // themselves equivalent — tests/exec_equivalence.rs — so this pins
    // that the tree layer keeps it that way).
    let mut ev_flat = EventRuntime::new(proto, SEED);
    let mut ev_wrapped = EventRuntime::new(&tree, SEED);
    for &(site, item) in arrivals {
        ev_flat.feed(site, item);
        ev_wrapped.feed(site, item);
    }
    ev_flat.quiesce();
    ev_wrapped.quiesce();
    assert_eq!(
        ev_flat.stats(),
        ev_wrapped.stats(),
        "{name}: depth-1 event CommStats differ"
    );
    assert_eq!(
        queries(ev_flat.coord()),
        queries(ev_wrapped.coord().root()),
        "{name}: depth-1 event root answers differ from flat"
    );
}

#[test]
fn depth1_tree_is_bit_identical_to_flat() {
    assert_depth1_identity(
        "randomized count",
        &RandomizedCount::new(cfg()),
        &zipf_arrivals(),
        |c| vec![c.estimate()],
    );
    assert_depth1_identity(
        "deterministic count",
        &DeterministicCount::new(cfg()),
        &zipf_arrivals(),
        |c| vec![c.estimate()],
    );
    assert_depth1_identity(
        "randomized frequency",
        &RandomizedFrequency::new(cfg()),
        &zipf_arrivals(),
        |c| (0..10).map(|j| c.estimate_frequency(j)).collect(),
    );
    assert_depth1_identity(
        "deterministic rank",
        &DeterministicRank::new(cfg()),
        &distinct_arrivals(),
        |c| {
            [u64::MAX / 4, u64::MAX / 2, u64::MAX / 4 * 3]
                .iter()
                .map(|&x| c.estimate_rank(x))
                .collect()
        },
    );
}

// --- layer 2: depth ≥ 2 smoke ---

/// The deterministic count tree at depth `d` keeps an explicit
/// two-sided bound: replay floors only ever under-replay, so `n̂ ≤ n`
/// stays unconditional; downward, each level costs its `(1+ε/d)` factor
/// plus < 1 element of floor rounding per aggregator.
fn assert_det_count_tree_bound(est: f64, n: u64, eps: f64, depth: usize, aggregators: usize) {
    let n = n as f64;
    assert!(est <= n + 1e-9, "tree n̂ {est} > n {n}");
    let per_level = 1.0 + eps / depth as f64;
    let factor = per_level.powi(depth as i32);
    assert!(
        n <= est * factor + (aggregators + 1) as f64 * factor + 1e-9,
        "n {n} > (1+ε/{depth})^{depth}·n̂ + rounding  (n̂ = {est}, {aggregators} aggregators)"
    );
}

#[test]
fn deterministic_count_tree_meets_its_bound_at_depth_2() {
    let eps = 0.1;
    let proto = Tree::new(
        DeterministicCount::new(TrackingConfig::new(K, eps)),
        TreeSpec::new(4).with_depth(2),
    );
    let mut r = Runner::new(&proto, SEED);
    for t in 0..N {
        r.feed((t % K as u64) as usize, &t);
        // The bound holds at every instant, not just at the end.
        if t % 997 == 0 {
            let c = r.coord();
            assert_det_count_tree_bound(c.root().estimate(), t + 1, eps, 2, c.aggregators());
        }
    }
    let c = r.coord();
    assert_eq!(c.depth(), 2);
    assert_eq!(c.aggregators(), 2, "8 leaves under fanout 4");
    assert_det_count_tree_bound(c.root().estimate(), N, eps, 2, c.aggregators());

    // Load accounting sanity: one internal boundary, carrying words,
    // and the root sees strictly less than the leaf boundary (which the
    // executor accounts).
    let loads = c.internal_loads();
    assert_eq!(loads.len(), 1);
    assert!(loads[0].up_words > 0, "no words ever reached the root");
    let root_words = c
        .root_load()
        .expect("depth 2 has a root load")
        .total_words();
    assert!(
        root_words < r.stats().total_words(),
        "root load {root_words} not below leaf-boundary words {}",
        r.stats().total_words()
    );
}

/// Scenario-string smoke: `+tree:F:D` parses, runs on each executor,
/// and the deterministic count error stays within the depth-adjusted
/// band (coarse here; the sharp mean-ε statement is release-gated
/// below).
#[test]
fn smoke_tree_scenarios_run_on_every_executor() {
    for spec in [
        "lockstep+tree:4:2",
        "lockstep+tree:2:3",
        "event+tree:4:2",
        "event:fixed:8+tree:4:2",
        "channel+tree:4:2",
    ] {
        let exec: ExecConfig = spec.parse().expect("scenario must parse");
        let (cs, err) = count_run(exec, CountAlgo::Deterministic, K, 0.1, N, SEED);
        assert!(cs.msgs > 0, "{spec}: no messages");
        assert!(cs.words >= cs.msgs, "{spec}: words < msgs");
        assert!(err < 0.2, "{spec}: err {err}");
    }
}

/// Faults act on the leaf links of a tree exactly as on a flat star:
/// loss is retransmitted, duplicates are discarded, and the run still
/// lands in the depth-adjusted band.
#[test]
fn smoke_tree_composes_with_faults() {
    let exec: ExecConfig = "event+tree:4:2+loss:0.2+dup:0.2".parse().unwrap();
    assert_eq!(exec.tree, Some(TreeSpec::new(4).with_depth(2)));
    let (cs, err) = count_run(exec, CountAlgo::Deterministic, K, 0.1, N, SEED);
    assert!(cs.msgs > 0);
    assert!(err < 0.2, "err {err}");
}

/// The sampling baseline has no tree composition; asking for one dies
/// loudly instead of silently answering from a flat run.
#[test]
#[should_panic(expected = "no TreeProtocol impl")]
fn sampling_under_tree_panics_with_a_pointer() {
    let exec: ExecConfig = "lockstep+tree:4:2".parse().unwrap();
    let _ = count_run(exec, CountAlgo::Sampling, K, 0.1, 100, SEED);
}

/// Live queries work at the tree root: a [`QueryHandle`] installed on an
/// executor running a depth-2 tree serves finite root answers with
/// monotone epochs while ingest continues, and agrees exactly with the
/// stop-the-world query after quiesce.
///
/// [`QueryHandle`]: dtrack::sim::QueryHandle
#[test]
fn query_handle_serves_live_answers_at_the_tree_root() {
    let proto = Tree::new(RandomizedCount::new(cfg()), TreeSpec::new(4).with_depth(2));
    let mut ex = ExecConfig::event(DeliveryPolicy::Instant).build(&proto, SEED);
    let handle = ex.query_handle();
    let mut last_epoch = 0;
    for t in 0..N {
        ex.feed((t % K as u64) as usize, t);
        let (epoch, est) = handle.read(|s| (s.epoch, s.state.root().estimate()));
        assert!(epoch >= last_epoch, "epoch went backwards");
        last_epoch = epoch;
        assert!(est.is_finite(), "live root estimate not finite");
    }
    ex.quiesce();
    let live = handle.read(|s| s.state.root().estimate());
    let truth = ex.query(|c: &TreeCoord<RandomizedCount>| c.root().estimate());
    assert_eq!(
        live.to_bits(),
        truth.to_bits(),
        "post-quiesce live answer differs from the stop-the-world query"
    );
}

/// Depth ≥ 2 runs draw node seeds from a stream disjoint from the flat
/// `site_seed` stream, so tree and flat runs of the same master seed
/// are *independent* samples — same answers would mean shared
/// randomness (the depth-1 case, where sharing is the contract, is
/// pinned above).
#[test]
fn depth2_randomness_is_independent_of_flat() {
    let flat = RandomizedCount::new(cfg());
    let tree = Tree::new(flat, TreeSpec::new(4).with_depth(2));
    let mut rf = Runner::new(&flat, SEED);
    let mut rt = Runner::new(&tree, SEED);
    for t in 0..N {
        rf.feed((t % K as u64) as usize, &t);
        rt.feed((t % K as u64) as usize, &t);
    }
    // Leaf-boundary traffic differing is the cheap, deterministic
    // witness: depth 2 runs ε/2 leaf instances on their own seed
    // stream, so reproducing the flat run's exact word count would mean
    // shared randomness (answers alone could coincide by luck).
    assert_ne!(
        rf.stats().total_words(),
        rt.stats().total_words(),
        "depth-2 tree reproduced the flat run's exact leaf traffic — \
         node seeds are not independent of site seeds"
    );
}

// --- layer 3: release-gated ε bounds (the acceptance criterion) ---

/// Mean error over ≥ 20 seeds of `metric` must be ≤ `eps`.
fn assert_mean_error_le_eps<F: Fn(u64) -> f64>(name: &str, eps: f64, seeds: u64, metric: F) {
    let mean = (0..seeds).map(&metric).sum::<f64>() / seeds as f64;
    assert!(
        mean <= eps,
        "{name}: mean error {mean:.4} over {seeds} seeds exceeds eps {eps}"
    );
}

/// Count, frequency, and rank meet the mean-error-≤-ε bound through a
/// depth-2 tree (fanout 4 over k = 16: every node has real merging to
/// do) — the ε/2-per-level split composes to the whole-ε budget.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "20-seed release-gated acceptance suite; covered by release CI"
)]
fn tree_protocols_meet_epsilon_at_depth_2() {
    let exec = ExecConfig::lockstep();
    let spec = TreeSpec::new(4).with_depth(2);
    let (k, eps, seeds, n, rank_n) = (16, 0.1, 20, 30_000u64, 8_000u64);
    for algo in [CountAlgo::Deterministic, CountAlgo::Randomized] {
        assert_mean_error_le_eps(&format!("tree count/{algo:?}"), eps, seeds, |seed| {
            tree_count_run(exec, spec, algo, k, eps, n, seed).err
        });
    }
    for algo in [FreqAlgo::Deterministic, FreqAlgo::Randomized] {
        assert_mean_error_le_eps(&format!("tree frequency/{algo:?}"), eps, seeds, |seed| {
            tree_frequency_run(exec, spec, algo, k, eps, n, seed).err
        });
    }
    for algo in [RankAlgo::Deterministic, RankAlgo::Randomized] {
        assert_mean_error_le_eps(&format!("tree rank/{algo:?}"), eps, seeds, |seed| {
            tree_rank_run(exec, spec, algo, k, eps, rank_n, seed).err
        });
    }
}

/// The same statement at depth 4 (binary tree over k = 16): four
/// levels of ε/4 instances and three aggregator tiers of replay
/// compose to the documented budget `(1+ε/4)⁴ − 1` (≈ 1.038·ε at
/// ε = 0.1 — the multiplicative per-level factors, see the module docs
/// in `dtrack_sim::exec::topology`; it converges to `eᵋ − 1` as depth
/// grows, never to less than ε).
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "20-seed release-gated acceptance suite; covered by release CI"
)]
fn tree_protocols_meet_epsilon_at_depth_4() {
    let exec = ExecConfig::lockstep();
    let spec = TreeSpec::new(2).with_depth(4);
    let (k, eps, seeds, n) = (16, 0.1, 20, 30_000u64);
    let budget = (1.0_f64 + eps / 4.0).powi(4) - 1.0;
    for algo in [CountAlgo::Deterministic, CountAlgo::Randomized] {
        assert_mean_error_le_eps(
            &format!("deep tree count/{algo:?}"),
            budget,
            seeds,
            |seed| tree_count_run(exec, spec, algo, k, eps, n, seed).err,
        );
    }
    assert_mean_error_le_eps("deep tree frequency/Randomized", budget, seeds, |seed| {
        tree_frequency_run(exec, spec, FreqAlgo::Randomized, k, eps, n, seed).err
    });
    assert_mean_error_le_eps("deep tree rank/Deterministic", budget, seeds, |seed| {
        tree_rank_run(exec, spec, RankAlgo::Deterministic, k, eps, 8_000, seed).err
    });
}

/// Tree runs under the acceptance fault mix (`+loss+dup+churn` on the
/// leaf links) still meet the ε bound — fault recovery and the
/// aggregation hierarchy compose.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "20-seed release-gated acceptance suite; covered by release CI"
)]
fn tree_meets_epsilon_under_the_acceptance_fault_mix() {
    let exec: ExecConfig = "event+loss:0.05+dup:0.05+churn:0.1".parse().unwrap();
    let spec = TreeSpec::new(4).with_depth(2);
    let (k, eps, seeds, n) = (16, 0.1, 20, 30_000u64);
    assert_mean_error_le_eps("faulty tree count", eps, seeds, |seed| {
        tree_count_run(exec, spec, CountAlgo::Randomized, k, eps, n, seed).err
    });
    assert_mean_error_le_eps("faulty tree frequency", eps, seeds, |seed| {
        tree_frequency_run(exec, spec, FreqAlgo::Randomized, k, eps, n, seed).err
    });
}

/// What the topology is *for*, asserted as a test and not only in
/// `exp_topology`: at k = 64 the depth-2 root boundary carries strictly
/// fewer words than the flat star's root (which sees every word of the
/// run), for both count protocols.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "multi-run root-load comparison; release CI covers it"
)]
fn depth2_root_load_undercuts_the_flat_star() {
    let exec = ExecConfig::lockstep();
    let (k, eps, n) = (64, 0.05, 100_000u64);
    let spec = TreeSpec::new(8).with_depth(2);
    for algo in [CountAlgo::Deterministic, CountAlgo::Randomized] {
        let flat_root = count_run(exec, algo, k, eps, n, SEED).0.words;
        let tree = tree_count_run(exec, spec, algo, k, eps, n, SEED);
        assert!(
            tree.root_words() < flat_root,
            "{algo:?}: tree root load {} ≥ flat root load {flat_root}",
            tree.root_words()
        );
    }
}
