//! The protocols on the *concurrent* channel runtime: one OS thread per
//! site, real message passing, quiesce-then-query. Verifies the protocols
//! don't secretly depend on the lock-step scheduler.

use dtrack::core::count::RandomizedCount;
use dtrack::core::frequency::RandomizedFrequency;
use dtrack::core::rank::RandomizedRank;
use dtrack::core::TrackingConfig;
use dtrack::sim::runtime::ChannelRuntime;
use dtrack::workload::items::DistinctSeq;

#[test]
fn count_tracking_concurrent() {
    let (k, eps, n) = (8, 0.1, 20_000u64);
    let proto = RandomizedCount::new(TrackingConfig::new(k, eps));
    let mut ok = 0;
    let reps = 10;
    for seed in 0..reps {
        let rt: ChannelRuntime<RandomizedCount> = ChannelRuntime::new(&proto, seed);
        for t in 0..n {
            rt.feed((t % k as u64) as usize, t);
        }
        rt.quiesce();
        let est = rt.with_coord(|c| c.estimate());
        // Concurrency weakens the instant-communication assumption the
        // analysis uses; allow 2εn.
        if (est - n as f64).abs() <= 2.0 * eps * n as f64 {
            ok += 1;
        }
        let stats = rt.shutdown();
        assert_eq!(stats.elements, n);
        assert!(stats.total_msgs() > 0);
    }
    assert!(ok >= 8, "only {ok}/{reps} accurate under concurrency");
}

#[test]
fn frequency_tracking_concurrent() {
    let (k, eps, n) = (8, 0.1, 16_000u64);
    let proto = RandomizedFrequency::new(TrackingConfig::new(k, eps));
    let mut ok = 0;
    let reps = 10;
    for seed in 0..reps {
        let rt: ChannelRuntime<RandomizedFrequency> = ChannelRuntime::new(&proto, seed);
        for t in 0..n {
            let item = if t % 5 == 0 { 7 } else { 1000 + t };
            rt.feed((t % k as u64) as usize, item);
        }
        rt.quiesce();
        let est = rt.with_coord(|c| c.estimate_frequency(7));
        let truth = (n / 5) as f64;
        if (est - truth).abs() <= 2.0 * eps * n as f64 {
            ok += 1;
        }
        rt.shutdown();
    }
    assert!(ok >= 8, "only {ok}/{reps} accurate under concurrency");
}

#[test]
fn rank_tracking_concurrent() {
    let (k, eps, n) = (8, 0.2, 12_000u64);
    let proto = RandomizedRank::new(TrackingConfig::new(k, eps));
    let mut ok = 0;
    let reps = 8;
    for seed in 0..reps {
        let rt: ChannelRuntime<RandomizedRank> = ChannelRuntime::new(&proto, seed);
        let seq = DistinctSeq::new(3);
        let mut all: Vec<u64> = Vec::with_capacity(n as usize);
        for t in 0..n {
            let v = seq.value_at(t);
            rt.feed((t % k as u64) as usize, v);
            all.push(v);
        }
        rt.quiesce();
        all.sort_unstable();
        let x = all[all.len() / 2];
        let truth = all.partition_point(|&v| v < x) as f64;
        let est = rt.with_coord(move |c| c.estimate_rank(x));
        if (est - truth).abs() <= 3.0 * eps * n as f64 {
            ok += 1;
        }
        rt.shutdown();
    }
    assert!(ok >= 6, "only {ok}/{reps} accurate under concurrency");
}

#[test]
fn concurrent_feeding_from_multiple_producers() {
    // Feed from 4 producer threads concurrently — the runtime must
    // remain consistent (count conservation after quiesce).
    use std::sync::Arc;
    let (k, n_per) = (8usize, 5_000u64);
    let proto = RandomizedCount::new(TrackingConfig::new(k, 0.1));
    let rt: Arc<ChannelRuntime<RandomizedCount>> = Arc::new(ChannelRuntime::new(&proto, 77));
    let mut handles = Vec::new();
    for p in 0..4u64 {
        let rt = Arc::clone(&rt);
        handles.push(std::thread::spawn(move || {
            for t in 0..n_per {
                rt.feed(((p * n_per + t) % k as u64) as usize, t);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    rt.quiesce();
    let total = 4 * n_per;
    let est = rt.with_coord(|c| c.estimate());
    assert!(
        (est - total as f64).abs() <= 0.3 * total as f64,
        "estimate {est} vs {total}"
    );
    assert_eq!(rt.stats().elements, total);
}
