//! End-to-end integration: every protocol on realistic multi-crate
//! workloads, checking both accuracy and the communication shape.

use dtrack::core::count::{DeterministicCount, RandomizedCount};
use dtrack::core::frequency::{DeterministicFrequency, RandomizedFrequency};
use dtrack::core::rank::{DeterministicRank, RandomizedRank};
use dtrack::core::sampling::ContinuousSampling;
use dtrack::core::TrackingConfig;
use dtrack::sim::Runner;
use dtrack::sketch::exact::{ExactCounts, ExactRanks};
use dtrack::workload::items::DistinctSeq;
use dtrack::workload::{Bursty, UniformSites, Workload, ZipfItems, ZipfSites};

#[test]
fn count_all_algorithms_agree_on_zipf_sites() {
    // Skewed site loads (zipf over sites) with 200k elements.
    let (k, eps, n) = (16, 0.1, 200_000u64);
    let cfg = TrackingConfig::new(k, eps);
    let arrivals =
        Workload::new(ZipfItems::new(1000, 1.0), ZipfSites::new(k, 1.0), n, 1).collect_vec();

    let mut rand = Runner::new(&RandomizedCount::new(cfg), 2);
    let mut det = Runner::new(&DeterministicCount::new(cfg), 2);
    let mut smp = Runner::new(&ContinuousSampling::new(cfg), 2);
    for a in &arrivals {
        rand.feed(a.site, &a.item);
        det.feed(a.site, &a.item);
        smp.feed(a.site, &a.item);
    }
    for (name, est) in [
        ("randomized", rand.coord().estimate()),
        ("deterministic", det.coord().estimate()),
        ("sampling", smp.coord().estimate_count()),
    ] {
        assert!(
            (est - n as f64).abs() <= 2.0 * eps * n as f64,
            "{name}: {est}"
        );
    }
}

#[test]
fn frequency_heavy_hitters_on_zipf_traffic() {
    let (k, eps, n) = (16, 0.01, 300_000u64);
    let cfg = TrackingConfig::new(k, eps);
    let arrivals =
        Workload::new(ZipfItems::new(50_000, 1.2), UniformSites::new(k), n, 3).collect_vec();
    let mut exact = ExactCounts::new();
    let mut r = Runner::new(&RandomizedFrequency::new(cfg), 4);
    for a in &arrivals {
        r.feed(a.site, &a.item);
        exact.observe(a.item);
    }
    // Every true 3%-heavy-hitter must be reported above (3% − 2ε).
    let truth = exact.heavy_hitters((0.03 * n as f64) as u64);
    assert!(!truth.is_empty());
    let reported = r.coord().heavy_hitters((0.03 - 2.0 * eps) * n as f64);
    for &(item, f) in &truth {
        assert!(
            reported.iter().any(|&(j, _)| j == item),
            "missed heavy hitter {item} (f={f})"
        );
    }
    // Estimates of the head items are within 2εn.
    for &(item, f) in truth.iter().take(10) {
        let est = r.coord().estimate_frequency(item);
        assert!(
            (est - f as f64).abs() <= 2.0 * eps * n as f64,
            "item {item}: est {est} vs {f}"
        );
    }
}

#[test]
fn frequency_randomized_beats_deterministic_communication() {
    let (k, eps, n) = (64, 0.02, 300_000u64);
    let cfg = TrackingConfig::new(k, eps);
    let arrivals =
        Workload::new(ZipfItems::new(10_000, 1.1), UniformSites::new(k), n, 5).collect_vec();
    let mut rand = Runner::new(&RandomizedFrequency::new(cfg), 6);
    let mut det = Runner::new(&DeterministicFrequency::new(cfg), 6);
    for a in &arrivals {
        rand.feed(a.site, &a.item);
        det.feed(a.site, &a.item);
    }
    assert!(
        rand.stats().total_words() < det.stats().total_words(),
        "randomized {} ≥ deterministic {}",
        rand.stats().total_words(),
        det.stats().total_words()
    );
}

#[test]
fn rank_tracking_on_bursty_arrivals() {
    let (k, eps, n) = (9, 0.15, 120_000u64);
    let cfg = TrackingConfig::new(k, eps);
    let arrivals = Workload::new(DistinctSeq::new(7), Bursty::new(k, 0.001), n, 8).collect_vec();
    let mut exact = ExactRanks::new();
    let mut rand = Runner::new(&RandomizedRank::new(cfg), 9);
    let mut det = Runner::new(&DeterministicRank::new(cfg), 9);
    for a in &arrivals {
        rand.feed(a.site, &a.item);
        det.feed(a.site, &a.item);
        exact.insert(a.item);
    }
    for phi in [0.25, 0.5, 0.75] {
        let x = exact.quantile(phi).unwrap();
        let truth = exact.rank(x) as f64;
        let est_r = rand.coord().estimate_rank(x);
        let est_d = det.coord().estimate_rank(x);
        assert!(
            (est_r - truth).abs() <= 3.0 * eps * n as f64,
            "randomized phi={phi}: {est_r} vs {truth}"
        );
        assert!(
            (est_d - truth).abs() <= eps * n as f64 + 2.0,
            "deterministic phi={phi}: {est_d} vs {truth}"
        );
    }
}

#[test]
fn rank_randomized_beats_deterministic_communication() {
    let (k, eps, n) = (64, 0.05, 150_000u64);
    let cfg = TrackingConfig::new(k, eps);
    let mut rand = Runner::new(&RandomizedRank::new(cfg), 1);
    let mut det = Runner::new(&DeterministicRank::new(cfg), 1);
    let seq = DistinctSeq::new(11);
    for t in 0..n {
        let v = seq.value_at(t);
        let site = (t % k as u64) as usize;
        rand.feed(site, &v);
        det.feed(site, &v);
    }
    assert!(
        rand.stats().total_words() < det.stats().total_words(),
        "randomized {} ≥ deterministic {}",
        rand.stats().total_words(),
        det.stats().total_words()
    );
}

#[test]
fn estimates_available_and_sane_at_every_scale() {
    // From the first element to 100k, queries never panic and stay sane.
    let cfg = TrackingConfig::new(8, 0.1);
    let mut count = Runner::new(&RandomizedCount::new(cfg), 13);
    let mut freq = Runner::new(&RandomizedFrequency::new(cfg), 13);
    let mut rank = Runner::new(&RandomizedRank::new(cfg), 13);
    let seq = DistinctSeq::new(17);
    for t in 0..100_000u64 {
        let site = (t % 8) as usize;
        count.feed(site, &t);
        freq.feed(site, &(t % 100));
        rank.feed(site, &seq.value_at(t));
        if t.is_power_of_two() {
            let n = (t + 1) as f64;
            assert!(count.coord().estimate() >= 0.0);
            assert!((count.coord().estimate() - n).abs() <= 0.5 * n + 2.0);
            assert!(freq.coord().estimate_frequency(0) <= 2.0 * n);
            assert!(rank.coord().estimate_total() >= 0.0);
        }
    }
}
