//! The protocols on the paper's own lower-bound inputs, plus the
//! frequency-from-rank reduction and failure-injection-style stress.
//! Executors are selected through [`ExecConfig`] — the same config enum
//! the experiment binaries use — so these scenarios run against the
//! event-scheduled runtime (and its delivery policies) as well as the
//! lock-step runner.

use dtrack::core::boost::{copies_needed, Replicated};
use dtrack::core::count::RandomizedCount;
use dtrack::core::frequency::RandomizedFrequency;
use dtrack::core::rank::RandomizedRank;
use dtrack::core::reduction::{encode, frequency_from_ranks, TieBreaker};
use dtrack::core::TrackingConfig;
use dtrack::sim::{DeliveryPolicy, ExecConfig, Executor, Runner};
use dtrack::workload::{MuCase, MuDistribution, SubroundInstance};

#[test]
fn count_accurate_on_mu_both_cases() {
    let (k, eps, n) = (16, 0.1, 100_000u64);
    let cfg = TrackingConfig::new(k, eps);
    let mu = MuDistribution::new(k, n);
    // Instant event delivery ≡ lock-step (pinned by exec_equivalence),
    // so this also covers the Runner path at no extra cost.
    let exec = ExecConfig::event(DeliveryPolicy::Instant);
    for case in [MuCase::OneSite(5), MuCase::RoundRobinAll] {
        let arrivals = mu.arrivals(case);
        let mut ok = 0;
        let reps = 20;
        for seed in 0..reps {
            let mut ex = exec.build(&RandomizedCount::new(cfg), seed);
            ex.feed_batch(arrivals.iter().map(|a| (a.site, a.item)).collect());
            ex.quiesce();
            let est = ex.coord().expect("in-process").estimate();
            if (est - n as f64).abs() <= eps * n as f64 {
                ok += 1;
            }
        }
        assert!(ok >= 15, "{case:?}: only {ok}/{reps} within εn");
    }
}

#[test]
fn count_stays_sound_under_delayed_and_reordered_delivery() {
    // The off-model scenario matrix the event runtime exists for: the
    // protocol's control loop acts on stale feedback (messages delayed
    // by many arrivals or adversarially reordered), yet after quiesce
    // the estimate must stay within a relaxed 2εn — reproducibly, since
    // every one of these runs is deterministic given its seed.
    let (k, eps, n) = (16, 0.1, 60_000u64);
    let cfg = TrackingConfig::new(k, eps);
    let mu = MuDistribution::new(k, n);
    let arrivals = mu.arrivals(MuCase::RoundRobinAll);
    for exec in [
        ExecConfig::event(DeliveryPolicy::FixedLatency(16)),
        ExecConfig::event(DeliveryPolicy::RandomDelay { min: 1, max: 64 }),
        ExecConfig::event(DeliveryPolicy::AdversarialReorder { window: 32 }),
    ] {
        let mut ok = 0;
        let reps = 10;
        for seed in 0..reps {
            let mut ex = exec.build(&RandomizedCount::new(cfg), seed);
            ex.feed_batch(arrivals.iter().map(|a| (a.site, a.item)).collect());
            ex.quiesce();
            let est = ex.coord().expect("in-process").estimate();
            if (est - n as f64).abs() <= 2.0 * eps * n as f64 {
                ok += 1;
            }
        }
        assert!(ok >= 8, "{exec}: only {ok}/{reps} within 2εn");
    }
}

#[test]
fn count_cheap_and_accurate_on_subround_instance() {
    let (k, eps) = (64usize, 0.05);
    let inst = SubroundInstance::new(k, eps, 10);
    let sched = inst.generate(4);
    let arrivals = SubroundInstance::arrivals(&sched);
    let n = arrivals.len() as f64;
    let mut r = Runner::new(&RandomizedCount::new(TrackingConfig::new(k, eps)), 6);
    for a in &arrivals {
        r.feed(a.site, &a.item);
    }
    // Accuracy at the end.
    assert!(
        (r.coord().estimate() - n).abs() <= 2.0 * eps * n,
        "est {} vs {n}",
        r.coord().estimate()
    );
    // Cost per subround is O(k) — the lower bound charges Ω(k), so the
    // two should bracket a constant factor.
    let per_subround = r.stats().total_msgs() as f64 / sched.len() as f64;
    assert!(
        per_subround < 20.0 * k as f64,
        "per-subround msgs {per_subround}"
    );
}

#[test]
fn frequency_survives_single_hot_site_with_bounded_space() {
    // Failure-injection flavour: one site takes all traffic (hot-spot
    // failure of the load balancer); virtual splits must keep its memory
    // flat and the estimates sound.
    let (k, eps, n) = (16, 0.05, 120_000u64);
    let cfg = TrackingConfig::new(k, eps);
    let mut r = Runner::new(&RandomizedFrequency::new(cfg), 3);
    for t in 0..n {
        r.feed(7, &(t % 50));
    }
    let est = r.coord().estimate_frequency(0);
    let truth = (n / 50) as f64;
    assert!((est - truth).abs() <= 2.0 * eps * n as f64, "est {est}");
    let bound = 30.0 / (eps * (k as f64).sqrt()) + 100.0;
    assert!((r.space().max_peak() as f64) < bound);
}

#[test]
fn frequency_via_rank_reduction_end_to_end() {
    let (k, eps, n) = (9, 0.15, 60_000u64);
    let proto = RandomizedRank::new(TrackingConfig::new(k, eps));
    let mut r = Runner::new(&proto, 21);
    let mut tb: Vec<TieBreaker> = (0..k).map(|i| TieBreaker::new(i, k)).collect();
    let mut truth = [0f64; 4];
    for t in 0..n {
        let site = (t % k as u64) as usize;
        let item = (t % 4) as u32;
        truth[item as usize] += 1.0;
        r.feed(site, &encode(item, tb[site].next_tie()));
    }
    for item in 0..4u32 {
        let est = frequency_from_ranks(r.coord(), item);
        assert!(
            (est - truth[item as usize]).abs() <= 3.0 * eps * n as f64,
            "item {item}: est {est} vs {}",
            truth[item as usize]
        );
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "slow in debug (median boosting × mu); runs in release CI"
)]
fn boosted_tracker_correct_at_all_times_on_mu() {
    let (k, eps, n) = (8, 0.15, 60_000u64);
    let copies = copies_needed(0.05, eps, n).min(11);
    let proto = Replicated::new(RandomizedCount::new(TrackingConfig::new(k, eps)), copies);
    // Case (a) — the nastier case for count tracking.
    let mu = MuDistribution::new(k, n);
    let arrivals = mu.arrivals(MuCase::OneSite(2));
    let mut r = Runner::new(&proto, 31);
    let mut worst = 0.0f64;
    for (t, a) in arrivals.iter().enumerate() {
        r.feed(a.site, &a.item);
        if t % 37 == 0 {
            let est = r.coord().median_by(|c| c.estimate());
            worst = worst.max((est - (t + 1) as f64).abs() / (t + 1) as f64);
        }
    }
    assert!(worst <= eps, "worst error {worst} > eps {eps}");
}
