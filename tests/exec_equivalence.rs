//! The equivalence matrix pinning the unified execution layer:
//!
//! 1. For all seven Table-1 protocols, the lock-step `Runner` and the
//!    `EventRuntime` under the instant `DeliveryPolicy` produce
//!    **identical** `CommStats`, per-site space peaks, and query answers
//!    at the same master seed — the event scheduler's FIFO tie-break
//!    reproduces the runner's round structure exactly, so the refactor
//!    is behavior-preserving by construction, not by accident.
//! 2. The `EventRuntime` under a *seeded random-delay* policy is
//!    bit-for-bit reproducible: two runs of the same seed agree on every
//!    statistic and query; a different seed produces a different run.

use dtrack::core::count::{DeterministicCount, RandomizedCount};
use dtrack::core::frequency::{DeterministicFrequency, RandomizedFrequency};
use dtrack::core::rank::{DeterministicRank, RandomizedRank};
use dtrack::core::sampling::ContinuousSampling;
use dtrack::core::TrackingConfig;
use dtrack::sim::exec::{DeliveryPolicy, EventRuntime};
use dtrack::sim::{Protocol, Runner, Site};
use dtrack::workload::items::DistinctSeq;
use dtrack::workload::{UniformSites, Workload, ZipfItems};

const K: usize = 8;
const N: u64 = 6_000;
const SEED: u64 = 42;

fn cfg() -> TrackingConfig {
    TrackingConfig::new(K, 0.1)
}

/// Zipf-items workload (count / frequency / sampling protocols).
fn zipf_arrivals() -> Vec<(usize, u64)> {
    Workload::new(ZipfItems::new(500, 1.2), UniformSites::new(K), N, 7)
        .map(|a| (a.site, a.item))
        .collect()
}

/// Duplicate-free workload (rank protocols assume distinct elements).
fn distinct_arrivals() -> Vec<(usize, u64)> {
    Workload::new(DistinctSeq::new(7), UniformSites::new(K), N, 7)
        .map(|a| (a.site, a.item))
        .collect()
}

/// Drive `Runner` and instant-`EventRuntime` side by side and require
/// identical accounting, space, and query answers (f64s compared
/// exactly: identical state must give identical bits).
fn assert_equivalent<P, Q>(name: &str, proto: &P, arrivals: &[(usize, u64)], queries: Q)
where
    P: Protocol,
    P::Site: Site<Item = u64>,
    Q: Fn(&P::Coord) -> Vec<f64>,
{
    let mut runner = Runner::new(proto, SEED);
    let mut event = EventRuntime::new(proto, SEED);
    for &(site, item) in arrivals {
        runner.feed(site, &item);
        event.feed(site, item);
        debug_assert_eq!(event.in_flight(), 0);
    }
    event.quiesce(); // no-op under instant delivery; keeps the contract
    assert_eq!(runner.stats(), event.stats(), "{name}: CommStats differ");
    for site in 0..K {
        assert_eq!(
            runner.space().peak(site),
            event.space().peak(site),
            "{name}: space peak differs at site {site}"
        );
    }
    let qr = queries(runner.coord());
    let qe = queries(event.coord());
    assert_eq!(qr, qe, "{name}: query answers differ");
    assert!(
        qr.iter().all(|v| v.is_finite()),
        "{name}: queries not finite"
    );
}

/// Two same-seed runs under `policy` must agree bit for bit. (Note a
/// *different* seed need not visibly differ for the deterministic
/// protocols — their message totals depend only on element counts — so
/// seed sensitivity is asserted separately, on a randomized protocol.)
fn assert_reproducible<P, Q>(
    name: &str,
    proto: &P,
    arrivals: &[(usize, u64)],
    policy: DeliveryPolicy,
    queries: Q,
) where
    P: Protocol,
    P::Site: Site<Item = u64>,
    Q: Fn(&P::Coord) -> Vec<f64>,
{
    let run = |seed: u64| {
        let mut event = EventRuntime::with_policy(proto, seed, policy);
        for &(site, item) in arrivals {
            event.feed(site, item);
        }
        event.quiesce();
        let answers = queries(event.coord());
        (event.stats().clone(), event.now(), answers)
    };
    let a = run(SEED);
    let b = run(SEED);
    assert_eq!(a, b, "{name}: same seed, different run under {policy:?}");
}

/// Different master seeds produce visibly different randomized runs —
/// the reproducibility above is seed-derived, not accidental constancy.
#[test]
fn different_seeds_differ_under_random_delay() {
    let proto = RandomizedCount::new(cfg());
    let arrivals = zipf_arrivals();
    let policy = DeliveryPolicy::RandomDelay { min: 1, max: 32 };
    let run = |seed: u64| {
        let mut event = EventRuntime::with_policy(&proto, seed, policy);
        for &(site, item) in &arrivals {
            event.feed(site, item);
        }
        event.quiesce();
        (event.stats().clone(), event.coord().estimate())
    };
    assert_ne!(run(SEED), run(SEED ^ 0xDEAD));
}

macro_rules! equivalence_case {
    ($test:ident, $name:literal, $proto:expr, $arrivals:expr, $queries:expr) => {
        #[test]
        fn $test() {
            let proto = $proto;
            let arrivals = $arrivals;
            let queries = $queries;
            assert_equivalent($name, &proto, &arrivals, &queries);
            assert_reproducible(
                $name,
                &proto,
                &arrivals,
                DeliveryPolicy::RandomDelay { min: 1, max: 32 },
                &queries,
            );
        }
    };
}

equivalence_case!(
    randomized_count_equivalence,
    "randomized count",
    RandomizedCount::new(cfg()),
    zipf_arrivals(),
    |c: &dtrack::core::count::RandCountCoord| vec![c.estimate()]
);

equivalence_case!(
    deterministic_count_equivalence,
    "deterministic count",
    DeterministicCount::new(cfg()),
    zipf_arrivals(),
    |c: &dtrack::core::count::DetCountCoord| vec![c.estimate()]
);

equivalence_case!(
    randomized_frequency_equivalence,
    "randomized frequency",
    RandomizedFrequency::new(cfg()),
    zipf_arrivals(),
    |c: &dtrack::core::frequency::RandFreqCoord| {
        (0..10).map(|j| c.estimate_frequency(j)).collect()
    }
);

equivalence_case!(
    deterministic_frequency_equivalence,
    "deterministic frequency",
    DeterministicFrequency::new(cfg()),
    zipf_arrivals(),
    |c: &dtrack::core::frequency::DetFreqCoord| {
        (0..10).map(|j| c.estimate_frequency(j)).collect()
    }
);

equivalence_case!(
    randomized_rank_equivalence,
    "randomized rank",
    RandomizedRank::new(cfg()),
    distinct_arrivals(),
    |c: &dtrack::core::rank::RandRankCoord| {
        [u64::MAX / 4, u64::MAX / 2, u64::MAX / 4 * 3]
            .iter()
            .map(|&x| c.estimate_rank(x))
            .collect()
    }
);

equivalence_case!(
    deterministic_rank_equivalence,
    "deterministic rank",
    DeterministicRank::new(cfg()),
    distinct_arrivals(),
    |c: &dtrack::core::rank::DetRankCoord| {
        [u64::MAX / 4, u64::MAX / 2, u64::MAX / 4 * 3]
            .iter()
            .map(|&x| c.estimate_rank(x))
            .collect()
    }
);

equivalence_case!(
    continuous_sampling_equivalence,
    "continuous sampling",
    ContinuousSampling::new(cfg()),
    distinct_arrivals(),
    |c: &dtrack::core::sampling::SamplingCoord| {
        vec![
            c.estimate_count(),
            c.estimate_frequency(3),
            c.estimate_rank(u64::MAX / 2),
        ]
    }
);

/// The batched ingest fast path feeds through the same equivalence: a
/// `feed_batch` run on the `Runner` equals the per-element run on the
/// `EventRuntime` (transitively pinning all three ingest paths).
#[test]
fn feed_batch_equals_event_runtime_per_element() {
    let proto = RandomizedFrequency::new(cfg());
    let arrivals = zipf_arrivals();
    let mut batched = Runner::new(&proto, SEED);
    batched.feed_batch(&arrivals);
    let mut event = EventRuntime::new(&proto, SEED);
    for &(site, item) in &arrivals {
        event.feed(site, item);
    }
    assert_eq!(batched.stats(), event.stats());
    // Space too: feed_batch samples space at message/run boundaries
    // only, so this pins that the documented weakening is invisible for
    // the real protocols (site space grows monotonically between sends).
    for site in 0..K {
        assert_eq!(
            batched.space().peak(site),
            event.space().peak(site),
            "space peak differs at site {site}"
        );
    }
    let qb: Vec<f64> = (0..10)
        .map(|j| batched.coord().estimate_frequency(j))
        .collect();
    let qe: Vec<f64> = (0..10)
        .map(|j| event.coord().estimate_frequency(j))
        .collect();
    assert_eq!(qb, qe);
}

/// Adversarial reorder is deterministic without a seed: two runs agree,
/// and the protocols survive (finite, sane estimates after quiesce).
#[test]
fn adversarial_reorder_is_deterministic_and_sane() {
    let proto = RandomizedCount::new(cfg());
    let arrivals = zipf_arrivals();
    let run = || {
        let mut event = EventRuntime::with_policy(
            &proto,
            SEED,
            DeliveryPolicy::AdversarialReorder { window: 16 },
        );
        for &(site, item) in &arrivals {
            event.feed(site, item);
        }
        event.quiesce();
        (event.stats().clone(), event.coord().estimate())
    };
    let (stats, est) = run();
    assert_eq!(run(), (stats.clone(), est));
    assert_eq!(stats.elements, N);
    // Reordering can cost accuracy, not sanity: the estimate is finite
    // and within half of the true count.
    assert!(est.is_finite());
    assert!((est - N as f64).abs() <= 0.5 * N as f64, "estimate {est}");
}
